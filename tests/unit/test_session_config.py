"""Unit tests for :class:`repro.serve.SessionConfig` and the legacy shims.

The API-consolidation contract: every streaming knob lives on one frozen,
validated dataclass whose field names round-trip the legacy keyword
arguments exactly; the old construction paths (``StreamSession(**kwargs)``,
``StreamSession.resume``, ``StreamSession.open_durable``) survive as thin
shims that emit a :class:`DeprecationWarning`; and the CLI flags map 1:1
onto a config through the single ``config_from_args`` helper.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os

import pytest

from repro.cli import build_parser, config_from_args
from repro.exceptions import ConfigurationError
from repro.serve import SessionConfig, StreamSession, open_session
from repro.serve.config import AUTO_WRITERS_CAP, DEFAULT_CONFIDENCE


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    @pytest.mark.parametrize(
        "fields",
        [
            {"confidence": 0.0},
            {"confidence": 1.0},
            {"confidence": -0.5},
            {"backend": "bogus"},
            {"shards": 0},
            {"shards": "bogus"},
            {"writers": 0},
            {"writers": -2},
            {"writers": True},
            {"writers": 2.5},
            {"writers": "many"},
            {"maxsize": 0},
            {"max_batch": 0},
            {"snapshot_every": 0, "durable": "somewhere"},
            # snapshot cadence without persistence is a configuration hole,
            # not a silent no-op
            {"snapshot_every": 4},
        ],
    )
    def test_invalid_fields_raise_configuration_error(self, fields):
        with pytest.raises(ConfigurationError):
            SessionConfig(**fields)

    def test_config_is_frozen(self):
        config = SessionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_batch = 7

    def test_replace_revalidates(self):
        config = SessionConfig(max_batch=8)
        assert config.replace(max_batch=9).max_batch == 9
        with pytest.raises(ConfigurationError):
            config.replace(max_batch=0)

    def test_resolved_defaults(self):
        config = SessionConfig()
        assert config.resolved_confidence == DEFAULT_CONFIDENCE
        assert config.resolved_backend == "auto"
        assert config.resolved_optimize_weights is True
        assert config.resolved_writers() == 1

    def test_resolved_writers_auto_is_cpu_bound_and_capped(self):
        resolved = SessionConfig(writers="auto").resolved_writers()
        assert resolved == max(1, min(AUTO_WRITERS_CAP, os.cpu_count() or 1))

    def test_round_trips_every_legacy_kwarg(self, tmp_path):
        legacy = {
            "maxsize": 9,
            "max_batch": 3,
            "auto_extend": False,
            "confidence": 0.8,
            "backend": "dense",
            "shards": "thread:2",
            "durable": tmp_path,
            "snapshot_every": 2,
            "fsync": False,
        }
        config = SessionConfig(**legacy)
        for name, value in legacy.items():
            assert getattr(config, name) == value


class TestLegacyShims:
    def test_constructor_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="open_session"):
            session = StreamSession(max_batch=4, confidence=0.8)
        assert session.config.max_batch == 4
        assert session.config.confidence == 0.8

    def test_config_construction_does_not_warn(self, recwarn):
        session = StreamSession(config=SessionConfig(max_batch=4))
        assert session.config.max_batch == 4
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_config_and_legacy_kwargs_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            StreamSession(config=SessionConfig(), max_batch=4)

    def test_unknown_kwargs_raise_type_error(self):
        with pytest.raises(TypeError, match="batchsize"):
            StreamSession(batchsize=4)

    def test_stream_session_refuses_multiwriter_configs(self):
        with pytest.raises(ConfigurationError, match="open_session"):
            StreamSession(config=SessionConfig(writers=3))

    def _populate(self, directory):
        async def scenario():
            async with open_session(
                SessionConfig(durable=directory, fsync=False)
            ) as session:
                for worker in range(6):
                    await session.submit(worker, worker % 3, 1)
                await session.flush()

        run(scenario())

    def test_resume_shim_warns_and_resumes(self, tmp_path):
        self._populate(tmp_path)
        with pytest.warns(DeprecationWarning, match="resume"):
            session = StreamSession.resume(tmp_path, fsync=False)
        assert session.applied_events == 6

    def test_open_durable_shim_warns_for_fresh_and_existing_state(
        self, tmp_path
    ):
        with pytest.warns(DeprecationWarning, match="open_durable"):
            fresh = StreamSession.open_durable(tmp_path / "fresh", fsync=False)
        assert fresh.applied_events == 0
        self._populate(tmp_path / "old")
        with pytest.warns(DeprecationWarning, match="open_durable"):
            resumed = StreamSession.open_durable(tmp_path / "old", fsync=False)
        assert resumed.applied_events == 6


class TestConfigFromArgs:
    def test_ingest_flags_map_one_to_one(self):
        args = build_parser().parse_args(
            [
                "ingest",
                "events.ndjson",
                "--confidence", "0.9",
                "--backend", "dense",
                "--batch-size", "7",
                "--queue-size", "33",
                "--shards", "thread:2",
                "--writers", "3",
                "--durable", "state-dir",
                "--snapshot-every", "4",
            ]
        )
        config = config_from_args(args)
        assert config == SessionConfig(
            confidence=0.9,
            backend="dense",
            max_batch=7,
            maxsize=33,
            shards="thread:2",
            writers=3,
            durable="state-dir",
            snapshot_every=4,
        )

    def test_writers_auto_passes_through(self):
        args = build_parser().parse_args(
            ["ingest", "events.ndjson", "--writers", "auto"]
        )
        assert config_from_args(args).writers == "auto"

    def test_serve_shares_the_same_translation(self):
        args = build_parser().parse_args(["serve", "--writers", "2"])
        config = config_from_args(args)
        assert config.writers == 2
        assert config.durable is None

    @pytest.mark.parametrize("value", ["0", "-1", "lots"])
    def test_invalid_writers_rejected_at_parse_time(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["ingest", "events.ndjson", "--writers", value]
            )
        assert "--writers" in capsys.readouterr().err
