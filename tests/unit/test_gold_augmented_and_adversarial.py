"""Unit tests for the gold-augmented evaluator and the adversarial simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gold_augmented import GoldAugmentedEvaluator, combine_estimates
from repro.core.m_worker import evaluate_all_workers
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.adversarial import AdversarialPopulation
from repro.simulation.binary import BinaryWorkerPopulation
from repro.types import ConfidenceInterval, EstimateStatus, WorkerErrorEstimate


def estimate(mean, deviation, worker=0, status=EstimateStatus.OK, confidence=0.9):
    half = 1.64 * deviation
    return WorkerErrorEstimate(
        worker=worker,
        interval=ConfidenceInterval(
            mean=mean,
            lower=max(0.0, mean - half),
            upper=min(1.0, mean + half),
            confidence=confidence,
            deviation=deviation,
        ),
        n_tasks=50,
        status=status,
    )


class TestCombineEstimates:
    def test_inverse_variance_weighting(self):
        agreement = estimate(0.2, 0.05)
        gold = estimate(0.3, 0.05)
        fused = combine_estimates(agreement, gold, confidence=0.9)
        # Equal precision -> the fused mean is the midpoint and the deviation
        # shrinks by sqrt(2).
        assert fused.interval.mean == pytest.approx(0.25)
        assert fused.interval.deviation == pytest.approx(0.05 / np.sqrt(2))

    def test_tighter_source_dominates(self):
        agreement = estimate(0.2, 0.02)
        gold = estimate(0.4, 0.2)
        fused = combine_estimates(agreement, gold, confidence=0.9)
        assert abs(fused.interval.mean - 0.2) < abs(fused.interval.mean - 0.4)

    def test_fused_never_wider_than_either_source(self):
        agreement = estimate(0.25, 0.07)
        gold = estimate(0.2, 0.04)
        fused = combine_estimates(agreement, gold, confidence=0.9)
        assert fused.interval.deviation <= min(0.07, 0.04) + 1e-12

    def test_missing_gold_returns_agreement(self):
        agreement = estimate(0.2, 0.05)
        fused = combine_estimates(agreement, None, confidence=0.8)
        assert fused.interval.mean == pytest.approx(0.2)
        assert fused.interval.confidence == 0.8

    def test_degenerate_agreement_falls_back_to_gold(self):
        degenerate = estimate(0.25, 1.0, status=EstimateStatus.DEGENERATE)
        gold = estimate(0.1, 0.03)
        fused = combine_estimates(degenerate, gold, confidence=0.9)
        assert fused.interval.mean == pytest.approx(0.1)

    def test_clamped_status_propagates(self):
        agreement = estimate(0.2, 0.05, status=EstimateStatus.CLAMPED)
        gold = estimate(0.25, 0.05)
        fused = combine_estimates(agreement, gold, confidence=0.9)
        assert fused.status is EstimateStatus.CLAMPED

    def test_both_degenerate_releveled_and_prefers_agreement(self):
        """Two degenerate sources: the agreement estimate wins (it carries
        the triples/weights provenance) and its interval is re-leveled to
        the requested confidence, as the docstring promises."""
        agreement = estimate(0.25, 1.0, status=EstimateStatus.DEGENERATE)
        gold = estimate(0.4, 1.0, worker=0, status=EstimateStatus.DEGENERATE)
        fused = combine_estimates(agreement, gold, confidence=0.7)
        assert fused.interval.mean == pytest.approx(0.25)
        assert fused.interval.confidence == 0.7
        assert fused.status is EstimateStatus.DEGENERATE
        assert fused.triples == agreement.triples
        assert fused.weights == agreement.weights
        # Re-leveling actually recomputed the bounds from the moments.
        assert fused.interval.lower == 0.0  # clipped at the unit range
        assert fused.interval.upper == 1.0

    def test_both_degenerate_missing_agreement_releveled_gold(self):
        gold = estimate(0.3, 0.0, status=EstimateStatus.OK)  # zero-width: unusable
        fused = combine_estimates(None, gold, confidence=0.6)
        assert fused.interval.mean == pytest.approx(0.3)
        assert fused.interval.confidence == 0.6

    def test_degenerate_relevel_changes_width_with_confidence(self):
        agreement = estimate(0.25, 0.4, status=EstimateStatus.DEGENERATE)
        narrow = combine_estimates(agreement, None, confidence=0.5)
        wide = combine_estimates(agreement, None, confidence=0.99)
        assert narrow.interval.size < wide.interval.size


class TestGoldAugmentedEvaluator:
    def test_without_gold_matches_plain_estimator(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.2]))
        matrix = population.generate(120, rng, densities=0.9)
        # Rebuild without gold labels to simulate a requester with none.
        stripped = ResponseMatrix.from_dense(matrix.to_dense(), arity=2)
        fused = GoldAugmentedEvaluator(confidence=0.9).evaluate_all(stripped)
        plain = evaluate_all_workers(stripped, confidence=0.9)
        for worker, plain_estimate in enumerate(plain):
            assert fused[worker].interval.mean == pytest.approx(
                plain_estimate.interval.mean
            )

    def test_partial_gold_tightens_intervals(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.2, 0.1]))
        matrix = population.generate(150, rng, densities=0.8)
        # Keep gold labels for only the first 30 tasks.
        partial = ResponseMatrix.from_dense(matrix.to_dense(), arity=2)
        partial.set_gold_labels(
            {t: l for t, l in matrix.gold_labels.items() if t < 30}
        )
        fused = GoldAugmentedEvaluator(confidence=0.9).evaluate_all(partial)
        plain = evaluate_all_workers(partial, confidence=0.9)
        fused_sizes = np.mean([fused[w].interval.size for w in fused])
        plain_sizes = np.mean([e.interval.size for e in plain])
        assert fused_sizes <= plain_sizes + 1e-9

    def test_coverage_maintained(self, rng):
        hits = total = 0
        for _ in range(20):
            population = BinaryWorkerPopulation.from_paper_palette(5, rng)
            matrix = population.generate(100, rng, densities=0.8)
            fused = GoldAugmentedEvaluator(confidence=0.8).evaluate_all(matrix)
            for worker, fused_estimate in fused.items():
                total += 1
                hits += fused_estimate.interval.contains(population.error_rates[worker])
        assert hits / total > 0.65

    def test_fast_path_knobs_are_bit_identical(self, rng):
        """The fused evaluator threads backend/batch/shard knobs through to
        the inner m-worker estimator; every path must fuse to bit-identical
        intervals (the fast paths silently bypassed the fused mode before)."""
        population = BinaryWorkerPopulation.from_paper_palette(6, rng)
        matrix = population.generate(90, rng, densities=0.8)
        reference = GoldAugmentedEvaluator(
            confidence=0.9, backend="dict"
        ).evaluate_all(matrix)
        for config in (
            {"backend": "dense", "batch_triples": False, "batch_lemma4": False},
            {"backend": "dense", "batch_triples": True, "batch_lemma4": False},
            {"backend": "dense", "batch_triples": True, "batch_lemma4": True},
        ):
            candidate = GoldAugmentedEvaluator(
                confidence=0.9, **config
            ).evaluate_all(matrix)
            assert set(candidate) == set(reference), config
            for worker, ref in reference.items():
                cand = candidate[worker]
                assert cand.interval.mean == ref.interval.mean, config
                assert cand.interval.lower == ref.interval.lower, config
                assert cand.interval.upper == ref.interval.upper, config
                assert cand.interval.deviation == ref.interval.deviation, config
                assert cand.weights == ref.weights, config
                assert cand.status is ref.status, config

    def test_validation(self, simulated_kary):
        kary_matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            GoldAugmentedEvaluator(confidence=0.0)
        with pytest.raises(ConfigurationError):
            GoldAugmentedEvaluator().evaluate_all(kary_matrix)
        tiny = ResponseMatrix(2, 4)
        tiny.add_response(0, 0, 1)
        tiny.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            GoldAugmentedEvaluator().evaluate_all(tiny)


class TestAdversarialPopulation:
    def test_worker_bookkeeping(self):
        population = AdversarialPopulation(
            honest_error_rates=np.array([0.1, 0.2]),
            n_spammers=1,
            n_adversaries=1,
            n_colluders=2,
        )
        assert population.n_workers == 6
        kinds = population.worker_kinds()
        assert kinds.count("honest") == 2
        assert kinds.count("colluder") == 2
        rates = population.true_error_rates()
        assert rates[2] == 0.5           # spammer
        assert rates[3] > 0.5            # adversary
        assert rates[4] == rates[5]      # colluders share the leader's rate

    def test_generated_behaviour_matches_model(self, rng):
        population = AdversarialPopulation(
            honest_error_rates=np.array([0.1]),
            n_spammers=1,
            n_adversaries=1,
            n_colluders=2,
            adversary_error_rate=0.9,
        )
        matrix = population.generate(2000, rng, density=1.0)
        # Honest worker near 0.1, spammer near 0.5, adversary near 0.9.
        assert matrix.empirical_error_rate(0) == pytest.approx(0.1, abs=0.04)
        assert matrix.empirical_error_rate(1) == pytest.approx(0.5, abs=0.06)
        assert matrix.empirical_error_rate(2) == pytest.approx(0.9, abs=0.04)
        # Colluders (workers 3 and 4) give identical answers on shared tasks.
        common = matrix.common_tasks(3, 4)
        assert all(
            matrix.response(3, task) == matrix.response(4, task) for task in common
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdversarialPopulation(honest_error_rates=np.array([0.6]))
        with pytest.raises(ConfigurationError):
            AdversarialPopulation(
                honest_error_rates=np.array([0.1]), adversary_error_rate=0.4
            )
        with pytest.raises(ConfigurationError):
            AdversarialPopulation(honest_error_rates=np.array([0.1]), n_spammers=-1)
        population = AdversarialPopulation(honest_error_rates=np.array([0.1, 0.1, 0.1]))
        with pytest.raises(ConfigurationError):
            population.generate(0, np.random.default_rng(0))

    def test_intervals_remain_valid_under_collusion(self, rng):
        """With assumption violations the intervals may lose coverage, but the
        estimator must stay numerically well-behaved (the robustness the
        paper's real-data section claims)."""
        population = AdversarialPopulation(
            honest_error_rates=np.array([0.1, 0.15, 0.2, 0.1]),
            n_spammers=1,
            n_colluders=2,
        )
        matrix = population.generate(150, rng, density=0.9)
        estimates = evaluate_all_workers(matrix, confidence=0.8)
        assert len(estimates) == population.n_workers
        for est in estimates:
            assert 0.0 <= est.interval.lower <= est.interval.upper <= 1.0

    def test_honest_worker_coverage_despite_spammers(self, rng):
        """Honest workers' intervals should still usually cover their error
        rates when the spammer filter is applied first."""
        from repro.core.estimator import WorkerEvaluator

        hits = total = 0
        for _ in range(10):
            population = AdversarialPopulation(
                honest_error_rates=np.array([0.1, 0.15, 0.2, 0.25, 0.1]),
                n_spammers=2,
            )
            matrix = population.generate(150, rng, density=0.9)
            estimates = WorkerEvaluator(
                confidence=0.8, remove_spammers=True
            ).evaluate_binary(matrix)
            for worker in range(5):  # honest workers only
                if worker not in estimates:
                    continue
                total += 1
                hits += estimates[worker].interval.contains(
                    population.true_error_rates()[worker]
                )
        assert total > 0
        assert hits / total > 0.6
