"""Unit tests for the durable streaming layer (:mod:`repro.serve.durable`).

Locks the on-disk contracts the kill/resume fuzz column relies on: the
versioned WAL header, CRC-guarded records with truncated-tail discard,
atomic visible-or-absent snapshots with checksum fallback, idempotent
replay (duplicates and double-resume cannot double-apply) vs hard failure
on true sequence gaps, the snapshot-every-N cadence, evaluator state
round-trips per backend (including post-restore delta updates), the CLI
``--durable`` resume path, and a real SIGKILL crash against a live
subprocess.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.exceptions import ConfigurationError, DurableStateError
from repro.serve import StreamSession
from repro.serve.durable import (
    DurableStore,
    WAL_FORMAT,
    load_snapshot_file,
    write_snapshot_file,
)


def run(coro):
    return asyncio.run(coro)


def make_stream(n_events, n_workers, n_tasks, seed):
    rng = np.random.default_rng(seed)
    return [
        (int(w), int(t), int(label))
        for w, t, label in zip(
            rng.integers(0, n_workers, size=n_events),
            rng.integers(0, n_tasks, size=n_events),
            rng.integers(0, 2, size=n_events),
        )
    ]


def assert_bit_identical(streamed, matrix, confidence=0.95):
    reference = MWorkerEstimator(confidence=confidence, backend="dict").evaluate_all(
        matrix
    )
    expected = {e.worker: e for e in reference if e.n_tasks > 0}
    assert set(streamed) == set(expected)
    for worker, ref in expected.items():
        est = streamed[worker]
        assert est.interval.mean == ref.interval.mean
        assert est.interval.lower == ref.interval.lower
        assert est.interval.upper == ref.interval.upper
        assert est.status is ref.status


async def stream_durably(directory, events, **session_kwargs):
    """Feed ``events`` through a durable session and close it cleanly."""
    session_kwargs.setdefault("fsync", False)
    async with StreamSession(durable=directory, **session_kwargs) as session:
        for event in events:
            await session.submit(*event)
        await session.flush()
        return await session.evaluate_all()


class TestWalFormat:
    def test_header_written_on_fresh_open(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        store.append_batch(1, 2, [(0, 0, 1), (1, 0, 0)])
        store.close()
        lines = store.wal_path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"format": WAL_FORMAT, "version": 1}
        record = json.loads(lines[1])
        assert record["seq"] == [1, 2]
        assert record["events"] == [[0, 0, 1], [1, 0, 0]]
        assert isinstance(record["crc"], int)

    def test_future_version_rejected(self, tmp_path):
        wal = tmp_path / "wal.ndjson"
        wal.write_text(json.dumps({"format": WAL_FORMAT, "version": 99}) + "\n")
        with pytest.raises(DurableStateError, match="version"):
            DurableStore(tmp_path).read_batches()
        with pytest.raises(DurableStateError, match="version"):
            StreamSession.resume(tmp_path)

    def test_missing_header_rejected(self, tmp_path):
        wal = tmp_path / "wal.ndjson"
        wal.write_text('{"seq": [1, 1], "events": [[0, 0, 1]], "crc": 0}\n')
        with pytest.raises(DurableStateError, match="header"):
            DurableStore(tmp_path).read_batches()

    def test_truncated_tail_discarded_and_reopen_truncates_file(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        store.append_batch(1, 1, [(0, 0, 1)])
        store.append_batch(2, 2, [(1, 0, 0)])
        store.append_batch(3, 3, [(2, 0, 1)])
        store.close()
        data = store.wal_path.read_bytes()
        store.wal_path.write_bytes(data[:-9])  # kill mid-append of record 3
        reopened = DurableStore(tmp_path, fsync=False)
        batches = reopened.read_batches()
        assert [b[:2] for b in batches] == [(1, 1), (2, 2)]
        assert reopened.discarded_tail_records == 1
        # Reopening for append truncates the torn bytes off the file, so
        # new records never interleave with garbage.
        reopened.open(resume=True)
        reopened.append_batch(3, 3, [(2, 0, 1)])
        reopened.close()
        final = DurableStore(tmp_path, fsync=False)
        assert [b[:2] for b in final.read_batches()] == [(1, 1), (2, 2), (3, 3)]
        assert final.discarded_tail_records == 0

    def test_flipped_byte_discards_from_corruption_onward(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        for seq in range(1, 5):
            store.append_batch(seq, seq, [(seq, 0, 1)])
        store.close()
        lines = store.wal_path.read_bytes().split(b"\n")
        flipped = bytearray(lines[2])  # second record
        flipped[len(flipped) // 2] ^= 0x01
        lines[2] = bytes(flipped)
        store.wal_path.write_bytes(b"\n".join(lines))
        reopened = DurableStore(tmp_path, fsync=False)
        batches = reopened.read_batches()
        # The CRC catches the flip; the record AND everything after it is
        # tail residue (appends are strictly ordered, so nothing beyond the
        # first bad record can be trusted).
        assert [b[:2] for b in batches] == [(1, 1)]
        assert reopened.discarded_tail_records == 3

    def test_duplicate_batch_and_double_replay_are_idempotent(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        store.append_batch(1, 2, [(0, 0, 1), (1, 0, 0)])
        store.append_batch(1, 2, [(0, 0, 1), (1, 0, 0)])  # duplicated batch
        store.append_batch(3, 3, [(2, 0, 1)])
        store.close()
        resumed = StreamSession.resume(tmp_path, fsync=False)
        assert resumed.applied_events == 3
        matrix = resumed.evaluator.matrix
        assert matrix.n_responses == 3
        assert matrix.response(0, 0) == 1
        assert matrix.response(2, 0) == 1
        run(resumed.abort())
        # Resuming a second time replays over the same WAL again — same
        # state, nothing double-applied.
        again = StreamSession.resume(tmp_path, fsync=False)
        assert again.applied_events == 3
        assert again.evaluator.matrix == matrix
        run(again.abort())

    def test_sequence_gap_raises(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        store.append_batch(1, 2, [(0, 0, 1), (1, 0, 0)])
        store.append_batch(5, 5, [(2, 0, 1)])  # records 3..4 are missing
        store.close()
        with pytest.raises(DurableStateError, match="gap"):
            StreamSession.resume(tmp_path)

    def test_fresh_session_refuses_directory_with_state(self, tmp_path):
        run(stream_durably(tmp_path, [(0, 0, 1), (1, 0, 0), (2, 0, 1)]))
        fresh = StreamSession(durable=tmp_path, fsync=False)

        async def scenario():
            with pytest.raises(DurableStateError, match="resume"):
                fresh.start()

        run(scenario())

    def test_append_requires_open_store(self, tmp_path):
        store = DurableStore(tmp_path, fsync=False)
        with pytest.raises(ConfigurationError):
            store.append_batch(1, 1, [(0, 0, 1)])

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            DurableStore(tmp_path, snapshot_every=0)
        with pytest.raises(ConfigurationError):
            DurableStore(tmp_path, keep_snapshots=0)


class TestSnapshotFiles:
    def test_round_trip_returns_writable_arrays(self, tmp_path):
        path = tmp_path / "snapshot-000000000005.snap"
        meta = {"applied_seq": 5, "nested": {"a": [1, 2]}}
        arrays = {
            "ints": np.arange(12, dtype=np.int64).reshape(3, 4),
            "floats": np.linspace(0.0, 1.0, 7),
            "packed": np.array([[1, 2], [3, 4]], dtype=np.uint8),
        }
        write_snapshot_file(path, meta, arrays)
        loaded_meta, loaded = load_snapshot_file(path)
        assert loaded_meta == meta
        for name, array in arrays.items():
            assert loaded[name].dtype == array.dtype
            assert np.array_equal(loaded[name], array)
            loaded[name][...] = 0  # must be writable (delta-updatable)

    def test_atomic_write_is_visible_or_absent(self, tmp_path):
        # A kill mid-write leaves only the .tmp sibling; loaders and state
        # probes must not see it.
        (tmp_path / "snapshot-000000000009.snap.tmp").write_bytes(b"partial junk")
        store = DurableStore(tmp_path)
        assert store.snapshot_paths() == []
        assert store.load_snapshot_state() is None
        assert not DurableStore.has_state(tmp_path)
        # A completed write is fully visible and valid.
        write_snapshot_file(
            tmp_path / "snapshot-000000000010.snap",
            {"applied_seq": 10},
            {"x": np.ones(3)},
        )
        assert DurableStore.has_state(tmp_path)
        meta, arrays = store.load_snapshot_state()
        assert meta["applied_seq"] == 10

    def test_checksum_rejection_falls_back_to_older_snapshot(self, tmp_path):
        old = tmp_path / "snapshot-000000000003.snap"
        new = tmp_path / "snapshot-000000000007.snap"
        write_snapshot_file(old, {"applied_seq": 3}, {"x": np.arange(4)})
        write_snapshot_file(new, {"applied_seq": 7}, {"x": np.arange(8)})
        data = bytearray(new.read_bytes())
        data[len(data) // 2] ^= 0xFF
        new.write_bytes(bytes(data))
        with pytest.raises(DurableStateError, match="checksum"):
            load_snapshot_file(new)
        meta, arrays = DurableStore(tmp_path).load_snapshot_state()
        assert meta["applied_seq"] == 3
        assert np.array_equal(arrays["x"], np.arange(4))

    def test_truncated_snapshot_rejected(self, tmp_path):
        path = tmp_path / "snapshot-000000000002.snap"
        write_snapshot_file(path, {"applied_seq": 2}, {"x": np.arange(6)})
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(DurableStateError):
            load_snapshot_file(path)

    def test_stale_snapshot_with_newer_wal_replays_the_delta(self, tmp_path):
        events = make_stream(40, 5, 12, seed=3)
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        evaluator = IncrementalEvaluator(3, 1, backend="dense")
        for seq, event in enumerate(events, start=1):
            store.append_batch(seq, seq, [event])
            evaluator.apply_batch([event], auto_extend=True)
            if seq == 25:  # snapshot mid-history, then keep appending
                store.write_snapshot(evaluator, seq)
        store.close()
        resumed = StreamSession.resume(tmp_path, backend="dense", fsync=False)
        assert resumed.applied_events == len(events)
        # Only the post-snapshot delta was replayed.
        assert resumed.durable._since_snapshot == len(events) - 25
        assert_bit_identical(
            resumed.evaluator.estimate_all(), resumed.evaluator.matrix
        )
        run(resumed.abort())

    def test_snapshot_every_n_cadence_and_pruning(self, tmp_path):
        store = DurableStore(tmp_path, snapshot_every=2, fsync=False)
        store.open()
        evaluator = IncrementalEvaluator(3, 1, backend="dense")
        for seq, event in enumerate(make_stream(6, 4, 6, seed=8), start=1):
            store.append_batch(seq, seq, [event])
            evaluator.apply_batch([event], auto_extend=True)
            store.record_applied(evaluator, seq)
        store.close()
        # 6 single-event batches at every-2 cadence = exactly 3 snapshots,
        # pruned down to keep_snapshots (default 2) newest on disk.
        assert store.snapshots_written == 3
        paths = store.snapshot_paths()
        assert [p.name for p in paths] == [
            "snapshot-000000000006.snap",
            "snapshot-000000000004.snap",
        ]

    def test_resume_with_no_snapshot_replays_pure_wal(self, tmp_path):
        events = make_stream(60, 6, 15, seed=11)

        async def scenario():
            session = StreamSession(durable=tmp_path, fsync=False, max_batch=7)
            session.start()
            for event in events:
                await session.submit(*event)
            await session.flush()
            await session.abort()

        run(scenario())
        assert DurableStore(tmp_path).snapshot_paths() == []
        resumed = StreamSession.resume(tmp_path, fsync=False)
        assert resumed.applied_events == len(events)
        assert_bit_identical(
            resumed.evaluator.estimate_all(), resumed.evaluator.matrix
        )
        run(resumed.abort())


@pytest.mark.parametrize("backend", ["dict", "dense", "sparse", "bitset"])
class TestEvaluatorStateRoundTrip:
    def test_round_trip_and_post_restore_deltas_bit_identical(self, backend):
        events = make_stream(150, 8, 20, seed=21)
        evaluator = IncrementalEvaluator(3, 1, backend=backend)
        evaluator.apply_batch(events[:100], auto_extend=True)
        evaluator.estimate_all()  # materialize caches before export
        meta, arrays = evaluator.export_state()
        assert meta["backend_kind"] == (
            "dict" if evaluator._backend is None else evaluator._backend.name
        )
        restored = IncrementalEvaluator.from_state(meta, arrays)
        assert restored.matrix == evaluator.matrix
        assert restored.n_responses == evaluator.n_responses
        assert_bit_identical(restored.estimate_all(), restored.matrix)
        # The restored backend keeps delta-updating: further batches (with
        # revisions and unseen ids) must stay bit-identical to a fresh
        # batch build over the accumulated data.
        tail = events[100:] + [(0, 0, 1), (9, 25, 0), (0, 0, 0)]
        restored.apply_batch(tail, auto_extend=True)
        assert restored.matrix.response(0, 0) == 0
        assert restored.matrix.n_workers == 10
        assert_bit_identical(restored.estimate_all(), restored.matrix)

    def test_snapshot_file_round_trip_through_disk(self, backend, tmp_path):
        events = make_stream(80, 6, 14, seed=33)
        evaluator = IncrementalEvaluator(3, 1, backend=backend)
        evaluator.apply_batch(events, auto_extend=True)
        store = DurableStore(tmp_path, fsync=False)
        store.open()
        store.write_snapshot(evaluator, applied_seq=len(events))
        store.close()
        meta, arrays = store.load_snapshot_state()
        assert meta["applied_seq"] == len(events)
        restored = IncrementalEvaluator.from_state(meta, arrays)
        assert restored.matrix == evaluator.matrix
        assert_bit_identical(restored.estimate_all(), restored.matrix)


class TestWarmCacheResume:
    """Snapshots carry the dependency ledger and the clean cached estimates,
    so a resume serves untouched workers with zero recomputation."""

    @staticmethod
    def two_component_stream():
        # Two disjoint worker/task components: a delta in one component must
        # not invalidate (or recompute) anything in the other.
        return [
            (w, t, (w + t) % 2) for w in range(4) for t in range(10)
        ] + [
            (w, t, (w * t) % 2) for w in range(4, 8) for t in range(10, 20)
        ]

    def test_state_round_trip_restores_warm_caches(self):
        events = self.two_component_stream()
        evaluator = IncrementalEvaluator(8, 20, backend="dense")
        evaluator.apply_batch(events)
        warm = evaluator.estimate_all()
        meta, arrays = evaluator.export_state()
        assert "deps.workers" in arrays and "cache.workers" in arrays
        restored = IncrementalEvaluator.from_state(
            meta, {key: value.copy() for key, value in arrays.items()}
        )
        assert restored.recompute_count == 0
        assert restored.estimate_all() == warm
        assert restored.recompute_count == 0, (
            "a warm restore must serve every cached estimate without "
            "recomputing"
        )
        # A delta touching one component recomputes exactly its invalidated
        # workers; the other component's restored caches keep serving.
        stats = restored.apply_batch([(0, 5, 1)])
        assert stats.invalidated <= set(range(4))
        restored.estimate_all()
        assert restored.recompute_count == len(stats.invalidated)

    def test_changed_configuration_restores_cold(self):
        events = self.two_component_stream()
        evaluator = IncrementalEvaluator(8, 20, backend="dense")
        evaluator.apply_batch(events)
        evaluator.estimate_all()
        meta, arrays = evaluator.export_state()
        cold = IncrementalEvaluator.from_state(
            meta,
            {key: value.copy() for key, value in arrays.items()},
            confidence=0.9,  # differs from the persisted 0.95
        )
        assert cold.cached_estimate(0) is None
        cold.estimate_all()
        assert cold.recompute_count > 0

    def test_durable_resume_zero_recompute_for_untouched_workers(
        self, tmp_path
    ):
        events = self.two_component_stream()

        async def ingest():
            async with StreamSession(
                durable=tmp_path, snapshot_every=50, fsync=False,
                backend="dense",
            ) as session:
                for event in events:
                    await session.submit(*event)
                await session.flush()
                return await session.evaluate_all()

        warm = run(ingest())
        resumed = StreamSession.resume(tmp_path, snapshot_every=50, fsync=False)

        async def read_and_delta():
            async with resumed:
                served = await resumed.evaluate_all()
                assert served == warm
                assert resumed.evaluator.recompute_count == 0, (
                    "resume must serve the snapshot's cached estimates "
                    "without recomputing any worker"
                )
                # A post-resume delta in the first component leaves the
                # second component's restored caches untouched.
                await resumed.submit(1, 3, 0)
                await resumed.flush()
                await resumed.evaluate_all()
                assert resumed.evaluator.recompute_count <= 4
        run(read_and_delta())


class TestSessionDurability:
    def test_clean_close_snapshots_and_resume_replays_nothing(self, tmp_path):
        events = make_stream(90, 7, 18, seed=41)
        closed = run(
            stream_durably(tmp_path, events, snapshot_every=5, max_batch=8)
        )
        resumed = StreamSession.resume(tmp_path, snapshot_every=5, fsync=False)
        assert resumed.applied_events == len(events)
        # The final snapshot covers the whole history: zero WAL replay.
        assert resumed.durable._since_snapshot == 0
        assert resumed.evaluator.estimate_all() == closed
        run(resumed.abort())

    def test_resume_continues_sequence_numbering(self, tmp_path):
        first = make_stream(30, 5, 10, seed=51)
        second = make_stream(30, 5, 10, seed=52)
        run(stream_durably(tmp_path, first, max_batch=4))

        async def continue_stream():
            session = StreamSession.resume(tmp_path, max_batch=4, fsync=False)
            assert session.applied_events == len(first)
            async with session:
                for event in second:
                    await session.submit(*event)
                await session.flush()
                assert session.applied_events == len(first) + len(second)
                return await session.evaluate_all()

        final = run(continue_stream())
        # The reopened WAL continues the monotonic numbering with no gaps
        # or overlaps across the restart.
        batches = DurableStore(tmp_path).read_batches()
        assert batches[0][0] == 1
        for (_, last, _), (nxt, _, _) in zip(batches, batches[1:]):
            assert nxt == last + 1
        assert batches[-1][1] == len(first) + len(second)
        reference = IncrementalEvaluator(3, 1, backend="dict")
        reference.apply_batch(first + second, auto_extend=True)
        assert final == reference.estimate_all()

    def test_open_durable_creates_then_resumes(self, tmp_path):
        events = make_stream(25, 4, 8, seed=61)

        async def scenario():
            first = StreamSession.open_durable(
                tmp_path, snapshot_every=3, fsync=False
            )
            assert first.applied_events == 0
            async with first:
                for event in events:
                    await first.submit(*event)
                await first.flush()
            second = StreamSession.open_durable(
                tmp_path, snapshot_every=3, fsync=False
            )
            assert second.applied_events == len(events)
            run_estimates = second.evaluator.estimate_all()
            await second.abort()
            return run_estimates

        estimates = run(scenario())
        reference = IncrementalEvaluator(3, 1, backend="dict")
        reference.apply_batch(events, auto_extend=True)
        assert estimates == reference.estimate_all()

    def test_cli_ingest_durable_resume_prints_identical_table(
        self, tmp_path, capsys
    ):
        events_file = tmp_path / "events.ndjson"
        events_file.write_text(
            "".join(
                json.dumps([w, t, label]) + "\n"
                for w, t, label in make_stream(120, 6, 15, seed=71)
            )
        )
        empty_file = tmp_path / "empty.ndjson"
        empty_file.write_text("")
        durable_dir = tmp_path / "state"
        assert (
            cli_main(
                [
                    "ingest",
                    str(events_file),
                    "--durable",
                    str(durable_dir),
                    "--snapshot-every",
                    "4",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        # Second invocation over the same directory resumes the persisted
        # state and serves the same table from zero new events.
        assert (
            cli_main(
                [
                    "ingest",
                    str(empty_file),
                    "--durable",
                    str(durable_dir),
                    "--snapshot-every",
                    "4",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == first

    def test_cli_snapshot_every_requires_durable(self, capsys):
        assert cli_main(["ingest", "/dev/null", "--snapshot-every", "3"]) == 2
        assert "--durable" in capsys.readouterr().err


class TestCrashSubprocess:
    def test_sigkill_mid_stream_then_resume_is_bit_identical(self, tmp_path):
        """Kill a real process mid-ingest (between fsyncs, possibly
        mid-batch or mid-snapshot) and resume its directory: after feeding
        the remainder of the stream, estimates must equal the dict batch
        reference over the full event set."""
        durable_dir = tmp_path / "state"
        events = make_stream(400, 7, 30, seed=81)
        child_code = textwrap.dedent(
            """
            import asyncio, sys
            import numpy as np
            from repro.serve import StreamSession

            def make_stream(n_events, n_workers, n_tasks, seed):
                rng = np.random.default_rng(seed)
                return [
                    (int(w), int(t), int(label))
                    for w, t, label in zip(
                        rng.integers(0, n_workers, size=n_events),
                        rng.integers(0, n_tasks, size=n_events),
                        rng.integers(0, 2, size=n_events),
                    )
                ]

            async def main():
                events = make_stream(400, 7, 30, seed=81)
                session = StreamSession(
                    durable=sys.argv[1], snapshot_every=5, max_batch=4
                )
                session.start()
                for index, event in enumerate(events):
                    await session.submit(*event)
                    if index and index % 20 == 0:
                        await session.flush()
                        print(index, flush=True)
                await session.flush()
                print("done", flush=True)

            asyncio.run(main())
            """
        )
        env = dict(os.environ)
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(repo_src)
        child = subprocess.Popen(
            [sys.executable, "-c", child_code, str(durable_dir)],
            stdout=subprocess.PIPE,
            env=env,
        )
        try:
            # Wait until the child has durably applied some prefix, then
            # kill it without any chance to clean up.
            line = child.stdout.readline()
            assert line.strip(), "child produced no progress before exiting"
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)
        assert DurableStore.has_state(durable_dir)

        async def finish():
            session = StreamSession.resume(durable_dir, max_batch=4, fsync=False)
            applied = session.applied_events
            assert 0 < applied <= len(events)
            async with session:
                for event in events[applied:]:
                    await session.submit(*event)
                await session.flush()
                return await session.evaluate_all(), session.evaluator.matrix.copy()

        estimates, matrix = run(finish())
        reference = IncrementalEvaluator(3, 1, backend="dict")
        reference.apply_batch(events, auto_extend=True)
        assert matrix == reference.matrix
        assert_bit_identical(estimates, matrix)
