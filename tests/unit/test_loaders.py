"""Unit tests for ResponseMatrix serialization."""

from __future__ import annotations

import pytest

from repro.data.loaders import (
    load_response_matrix_csv,
    load_response_matrix_json,
    save_response_matrix_csv,
    save_response_matrix_json,
)
from repro.exceptions import DataValidationError


class TestCsv:
    def test_round_trip_with_gold(self, small_binary_matrix, tmp_path):
        responses = tmp_path / "responses.csv"
        gold = tmp_path / "gold.csv"
        save_response_matrix_csv(small_binary_matrix, responses, gold)
        loaded = load_response_matrix_csv(
            responses, gold, n_workers=3, n_tasks=8, arity=2
        )
        assert loaded == small_binary_matrix

    def test_round_trip_without_gold(self, non_regular_matrix, tmp_path):
        responses = tmp_path / "responses.csv"
        save_response_matrix_csv(non_regular_matrix, responses)
        loaded = load_response_matrix_csv(responses, n_workers=4, n_tasks=10)
        assert loaded.n_responses == non_regular_matrix.n_responses
        assert not loaded.has_gold

    def test_missing_columns_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(DataValidationError):
            load_response_matrix_csv(bad)

    def test_gold_missing_columns_rejected(self, small_binary_matrix, tmp_path):
        responses = tmp_path / "responses.csv"
        save_response_matrix_csv(small_binary_matrix, responses)
        bad_gold = tmp_path / "gold.csv"
        bad_gold.write_text("task\n0\n")
        with pytest.raises(DataValidationError):
            load_response_matrix_csv(responses, bad_gold)

    def test_dimensions_inferred_when_omitted(self, small_binary_matrix, tmp_path):
        responses = tmp_path / "responses.csv"
        save_response_matrix_csv(small_binary_matrix, responses)
        loaded = load_response_matrix_csv(responses)
        assert loaded.n_workers == 3
        assert loaded.n_tasks == 8


class TestJson:
    def test_round_trip(self, small_binary_matrix, tmp_path):
        path = tmp_path / "matrix.json"
        save_response_matrix_json(small_binary_matrix, path)
        loaded = load_response_matrix_json(path)
        assert loaded == small_binary_matrix

    def test_round_trip_kary_non_regular(self, tmp_path, simulated_kary):
        matrix, _ = simulated_kary
        path = tmp_path / "kary.json"
        save_response_matrix_json(matrix, path)
        loaded = load_response_matrix_json(path)
        assert loaded == matrix
        assert loaded.arity == 3

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DataValidationError):
            load_response_matrix_json(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "incomplete.json"
        path.write_text('{"n_workers": 2, "n_tasks": 2}')
        with pytest.raises(DataValidationError):
            load_response_matrix_json(path)
