"""Property-style equivalence tests for the vectorized dense backend.

On randomized non-regular binary and k-ary matrices, every statistic the
dense backend produces — pairwise common-task counts ``c_ij``, agreement
counts, triple counts ``c_ijk``, Algorithm A3 count tensors, and the spammer
filter's majority-disagreement proxies — must *exactly* match the original
dict-of-dicts computation, and estimator outputs must be bit-identical
whichever backend serves the statistics.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.kary import KaryEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.core.spammer_filter import filter_spammers
from repro.core.three_worker import evaluate_three_workers
from repro.data.dense_backend import (
    AUTO_DENSE_CELL_LIMIT,
    AUTO_DENSE_WORKER_LIMIT,
    DenseAgreementBackend,
    resolve_backend,
    resolve_triple_backend,
)
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError


def random_matrix(
    seed: int,
    n_workers: int,
    n_tasks: int,
    arity: int = 2,
    density: float = 0.5,
    silent_worker: bool = True,
) -> ResponseMatrix:
    """Non-regular random matrix; some workers may answer nothing at all."""
    rng = np.random.default_rng(seed)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    per_worker_density = rng.uniform(0.3 if not silent_worker else 0.0, density, size=n_workers)
    if silent_worker:
        per_worker_density[rng.integers(0, n_workers)] = 0.0
    for worker in range(n_workers):
        mask = rng.random(n_tasks) < per_worker_density[worker]
        for task in np.nonzero(mask)[0]:
            matrix.add_response(worker, int(task), int(rng.integers(0, arity)))
    return matrix


MATRIX_CASES = [
    (0, 6, 40, 2, 0.8),
    (1, 9, 30, 2, 0.5),
    (2, 5, 25, 3, 0.9),
    (3, 7, 50, 4, 0.6),
    (4, 12, 20, 2, 0.35),
]


@pytest.mark.parametrize("seed,m,n,arity,density", MATRIX_CASES)
class TestCountEquivalence:
    def test_pair_counts_match_dict_of_dicts(self, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity, density)
        backend = DenseAgreementBackend.from_matrix(matrix)
        for a, b in itertools.combinations(range(m), 2):
            stats = matrix.pair_statistics(a, b)
            assert backend.pair(a, b) == (stats.common_tasks, stats.agreements)

    def test_triple_counts_match_set_intersections(self, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity, density)
        backend = DenseAgreementBackend.from_matrix(matrix)
        for triple in itertools.combinations(range(m), 3):
            assert backend.triple_common_count(*triple) == matrix.n_common_tasks(
                *triple
            )

    def test_triple_count_matrix_matches_popcounts(self, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity, density)
        backend = DenseAgreementBackend.from_matrix(matrix)
        worker = 0
        partners = [w for w in range(m) if w != worker]
        grid = backend.triple_count_matrix(worker, partners)
        for s, x in enumerate(partners):
            for t, y in enumerate(partners):
                if x == y:
                    expected = matrix.n_common_tasks(worker, x)
                else:
                    expected = matrix.n_common_tasks(worker, x, y)
                assert grid[s, t] == expected

    def test_count_tensors_match(self, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity, density)
        backend = DenseAgreementBackend.from_matrix(matrix)
        rng = np.random.default_rng(seed + 1000)
        triples = [tuple(rng.choice(m, size=3, replace=False)) for _ in range(4)]
        for workers in triples:
            workers = tuple(int(w) for w in workers)
            assert np.array_equal(
                backend.response_count_tensor(workers),
                matrix.response_count_tensor(workers),
            )

    def test_majority_disagreement_matches(self, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity, density)
        backend = DenseAgreementBackend.from_matrix(matrix)
        rates = backend.majority_disagreement_rates()
        for worker in range(m):
            try:
                expected = matrix.disagreement_with_majority(worker)
            except InsufficientDataError:
                expected = None
            assert rates[worker] == expected


@pytest.mark.parametrize("seed,m,n,arity,density", MATRIX_CASES)
def test_agreement_statistics_identical_across_backends(seed, m, n, arity, density):
    matrix = random_matrix(seed, m, n, arity, density)
    dict_stats = compute_agreement_statistics(matrix, backend="dict")
    dense_stats = AgreementStatistics.precompute(matrix)
    assert dense_stats.has_dense_backend and not dict_stats.has_dense_backend
    for a, b in itertools.combinations(range(m), 2):
        assert dense_stats.common_count(a, b) == dict_stats.common_count(a, b)
        assert dense_stats.agreement_count(a, b) == dict_stats.agreement_count(a, b)
    for triple in itertools.combinations(range(min(m, 6)), 3):
        assert dense_stats.triple_common_count(
            *triple
        ) == dict_stats.triple_common_count(*triple)


class TestEstimatorBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 4, 7])
    def test_m_worker_intervals_bit_identical(self, seed):
        matrix = random_matrix(seed, 10, 60, arity=2, density=0.8)
        legacy = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(matrix)
        fast = MWorkerEstimator(confidence=0.9, backend="dense").evaluate_all(matrix)
        for a, b in zip(legacy, fast):
            assert a.interval.mean == b.interval.mean
            assert a.interval.lower == b.interval.lower
            assert a.interval.upper == b.interval.upper
            assert a.interval.deviation == b.interval.deviation
            assert a.weights == b.weights
            assert [t.partners for t in a.triples] == [t.partners for t in b.triples]
            assert a.status is b.status

    def test_m_worker_uniform_weights_bit_identical(self):
        matrix = random_matrix(2, 8, 50, arity=2, density=0.7)
        legacy = MWorkerEstimator(
            confidence=0.8, optimize_weights=False, backend="dict"
        ).evaluate_all(matrix)
        fast = MWorkerEstimator(
            confidence=0.8, optimize_weights=False, backend="dense"
        ).evaluate_all(matrix)
        for a, b in zip(legacy, fast):
            assert a.interval.lower == b.interval.lower
            assert a.interval.upper == b.interval.upper

    def test_three_worker_bit_identical(self):
        matrix = random_matrix(5, 3, 80, arity=2, density=0.95, silent_worker=False)
        legacy = evaluate_three_workers(matrix, confidence=0.9, backend="dict")
        fast = evaluate_three_workers(matrix, confidence=0.9, backend="dense")
        for a, b in zip(legacy, fast):
            assert a.interval.lower == b.interval.lower
            assert a.interval.upper == b.interval.upper
            assert len(a.triples) == len(a.weights) == 1

    def test_spammer_filter_identical(self):
        matrix = random_matrix(3, 9, 40, arity=2, density=0.8)
        legacy = filter_spammers(matrix, backend="dict")
        fast = filter_spammers(matrix, backend="dense")
        assert legacy.kept_workers == fast.kept_workers
        assert legacy.removed_workers == fast.removed_workers
        assert legacy.approximate_error_rates == fast.approximate_error_rates
        assert legacy.filtered == fast.filtered

    def test_kary_tensor_path_identical(self):
        matrix = random_matrix(6, 5, 120, arity=3, density=0.9)
        legacy = KaryEstimator(confidence=0.9, backend="dict").evaluate(
            matrix, workers=(0, 1, 2)
        )
        fast = KaryEstimator(confidence=0.9, backend="dense").evaluate(
            matrix, workers=(0, 1, 2)
        )
        for a, b in zip(legacy, fast):
            assert a.worker == b.worker
            for key, entry in a.entries.items():
                other = b.entries[key]
                assert entry.interval.lower == other.interval.lower
                assert entry.interval.upper == other.interval.upper


class TestDeltaUpdates:
    def test_apply_response_matches_fresh_rebuild(self):
        rng = np.random.default_rng(11)
        m, n, arity = 7, 30, 2
        matrix = ResponseMatrix(n_workers=m, n_tasks=n, arity=arity)
        backend = DenseAgreementBackend.from_matrix(matrix)
        # Touch every lazy cache so the deltas exercise the patched arrays.
        backend.common_counts, backend.agreement_counts
        backend.triple_common_count(0, 1, 2)
        backend.task_votes
        for _ in range(400):
            worker = int(rng.integers(0, m))
            task = int(rng.integers(0, n))
            label = int(rng.integers(0, arity))
            previous = matrix.response(worker, task)
            matrix.add_response(worker, task, label)
            backend.apply_response(worker, task, label, previous)
        fresh = DenseAgreementBackend.from_matrix(matrix)
        assert np.array_equal(backend.common_counts, fresh.common_counts)
        assert np.array_equal(backend.agreement_counts, fresh.agreement_counts)
        assert np.array_equal(backend.task_votes, fresh.task_votes)
        for triple in itertools.combinations(range(m), 3):
            assert backend.triple_common_count(*triple) == fresh.triple_common_count(
                *triple
            )


class TestResolveBackend:
    def test_choices(self):
        matrix = random_matrix(0, 4, 10)
        assert resolve_backend(matrix, "dict") is None
        assert isinstance(resolve_backend(matrix, "dense"), DenseAgreementBackend)
        assert isinstance(resolve_backend(matrix, "auto"), DenseAgreementBackend)
        existing = DenseAgreementBackend.from_matrix(matrix)
        assert resolve_backend(matrix, existing) is existing
        with pytest.raises(ConfigurationError):
            resolve_backend(matrix, "cupy")

    def test_auto_falls_back_for_huge_grids(self):
        huge = ResponseMatrix(
            n_workers=AUTO_DENSE_CELL_LIMIT // 10 + 1, n_tasks=10, arity=2
        )
        assert resolve_backend(huge, "auto") is None
        assert MWorkerEstimator(backend="auto").confidence  # knob exists

    def test_auto_respects_worker_limit(self):
        # The pair-count caches are O(m^2); a worker-heavy matrix must fall
        # back to dict even when m*n is under the cell limit.
        tall = ResponseMatrix(
            n_workers=AUTO_DENSE_WORKER_LIMIT + 1, n_tasks=4, arity=2
        )
        assert tall.n_workers * tall.n_tasks <= AUTO_DENSE_CELL_LIMIT
        assert resolve_backend(tall, "auto") is None

    def test_triple_scoped_auto_skips_backend_for_many_workers(self):
        wide = random_matrix(8, 40, 30, density=0.8)
        assert resolve_triple_backend(wide, "auto") is None
        assert isinstance(
            resolve_triple_backend(wide, "dense"), DenseAgreementBackend
        )
        small = random_matrix(8, 3, 30, density=0.9, silent_worker=False)
        assert isinstance(
            resolve_triple_backend(small, "auto"), DenseAgreementBackend
        )

    def test_dense_lookups_validate_worker_ids(self):
        matrix = random_matrix(0, 5, 20)
        backend = DenseAgreementBackend.from_matrix(matrix)
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            backend.pair(-1, 0)
        with pytest.raises(DataValidationError):
            backend.triple_common_count(0, 1, 5)
        with pytest.raises(DataValidationError):
            backend.response_count_tensor((-1, 0, 1))
        with pytest.raises(DataValidationError):
            backend.triple_count_matrix(0, [1, -2])
        with pytest.raises(DataValidationError):
            KaryEstimator(backend="dense").evaluate(
                random_matrix(2, 5, 25, arity=3, density=0.9), workers=(-1, 0, 1)
            )
