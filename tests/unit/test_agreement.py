"""Unit tests for the agreement-statistics cache and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    CrowdAssessmentError,
    DataValidationError,
    DegenerateEstimateError,
    InsufficientDataError,
)


class TestAgreementStatistics:
    def test_agreement_rate_matches_matrix(self, small_binary_matrix):
        stats = compute_agreement_statistics(small_binary_matrix)
        assert stats.agreement_rate(0, 1) == small_binary_matrix.agreement_rate(0, 1)
        assert stats.common_count(0, 2) == 8
        assert stats.agreement_count(0, 1) == 7

    def test_order_invariance(self, non_regular_matrix):
        stats = compute_agreement_statistics(non_regular_matrix)
        assert stats.agreement_rate(0, 3) == stats.agreement_rate(3, 0)
        assert stats.common_count(1, 2) == stats.common_count(2, 1)

    def test_triple_common_count(self, non_regular_matrix):
        stats = compute_agreement_statistics(non_regular_matrix)
        assert stats.triple_common_count(0, 1, 2) == non_regular_matrix.n_common_tasks(0, 1, 2)
        assert stats.triple_common_count(2, 1, 0) == stats.triple_common_count(0, 1, 2)

    def test_has_overlap(self, non_regular_matrix):
        stats = compute_agreement_statistics(non_regular_matrix)
        assert stats.has_overlap(0, 1)
        assert stats.has_overlap(0, 1, minimum=5)
        assert not stats.has_overlap(0, 1, minimum=100)

    def test_caching_returns_consistent_values(self, non_regular_matrix):
        stats = compute_agreement_statistics(non_regular_matrix)
        first = stats.agreement_rate(0, 1)
        # Mutating the underlying matrix after the first query does not change
        # the cached value (the cache is a snapshot, documented behaviour).
        non_regular_matrix.add_response(0, 9, 1)
        assert stats.agreement_rate(0, 1) == first

    def test_same_worker_rejected(self, small_binary_matrix):
        stats = compute_agreement_statistics(small_binary_matrix)
        with pytest.raises(DataValidationError):
            stats.agreement_rate(1, 1)
        with pytest.raises(DataValidationError):
            stats.triple_common_count(0, 1, 1)

    def test_no_overlap_raises(self):
        matrix = ResponseMatrix(3, 4)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 1, 1)
        matrix.add_response(2, 0, 1)
        stats = AgreementStatistics(matrix=matrix)
        with pytest.raises(InsufficientDataError):
            stats.agreement_rate(0, 1)
        assert stats.common_count(0, 1) == 0


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            DataValidationError,
            InsufficientDataError,
            DegenerateEstimateError,
            ConvergenceError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_base(self, exception_type):
        assert issubclass(exception_type, CrowdAssessmentError)
        with pytest.raises(CrowdAssessmentError):
            raise exception_type("boom")

    def test_base_derives_from_exception(self):
        assert issubclass(CrowdAssessmentError, Exception)
