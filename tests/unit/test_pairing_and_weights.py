"""Unit tests for triple formation (Section III-C1) and Lemma-5 weights."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.agreement import compute_agreement_statistics
from repro.core.pairing import form_triples, greedy_pairs, random_pairs
from repro.core.weights import combined_variance, optimal_weights, uniform_weights
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError


def build_matrix_with_overlaps() -> ResponseMatrix:
    """Five workers with sharply different overlap with worker 0.

    Worker 1 and 2 share many tasks with worker 0; workers 3 and 4 share few.
    """
    matrix = ResponseMatrix(n_workers=5, n_tasks=20)
    ranges = {0: range(0, 16), 1: range(0, 16), 2: range(0, 14), 3: range(12, 20), 4: range(13, 20)}
    for worker, tasks in ranges.items():
        for task in tasks:
            matrix.add_response(worker, task, task % 2)
    return matrix


class TestGreedyPairs:
    def test_pairs_partition_candidates(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        pairs = greedy_pairs(stats, 0, [1, 2, 3, 4])
        flattened = [worker for pair in pairs for worker in pair]
        assert len(flattened) == len(set(flattened))
        assert set(flattened).issubset({1, 2, 3, 4})

    def test_best_partner_paired_first(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        pairs = greedy_pairs(stats, 0, [1, 2, 3, 4])
        # Worker 1 has the largest overlap with worker 0 and must be in the
        # first pair formed.
        assert 1 in pairs[0]

    def test_candidates_without_overlap_dropped(self):
        matrix = ResponseMatrix(n_workers=4, n_tasks=10)
        for task in range(5):
            matrix.add_response(0, task, 0)
            matrix.add_response(1, task, 0)
            matrix.add_response(2, task, 0)
        for task in range(5, 10):
            matrix.add_response(3, task, 0)
        stats = compute_agreement_statistics(matrix)
        pairs = greedy_pairs(stats, 0, [1, 2, 3])
        assert pairs == [(1, 2)] or pairs == [(2, 1)]

    def test_target_cannot_be_candidate(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        with pytest.raises(ConfigurationError):
            greedy_pairs(stats, 0, [0, 1])


class TestRandomPairs:
    def test_pairs_respect_overlap(self, rng):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        pairs = random_pairs(stats, 0, [1, 2, 3, 4], rng)
        for a, b in pairs:
            assert stats.common_count(a, b) >= 1
            assert stats.common_count(0, a) >= 1
            assert stats.common_count(0, b) >= 1

    def test_requires_rng_through_form_triples(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        with pytest.raises(ConfigurationError):
            form_triples(stats, 0, [1, 2, 3, 4], strategy="random", rng=None)


class TestFormTriples:
    def test_triples_include_target_first(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        triples = form_triples(stats, 0, [1, 2, 3, 4])
        assert all(triple[0] == 0 for triple in triples)
        assert all(len(set(triple)) == 3 for triple in triples)

    def test_unknown_strategy_rejected(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        with pytest.raises(ConfigurationError):
            form_triples(stats, 0, [1, 2], strategy="clever")

    def test_min_overlap_filters_weak_triples(self):
        matrix = build_matrix_with_overlaps()
        stats = compute_agreement_statistics(matrix)
        strict = form_triples(stats, 0, [1, 2, 3, 4], min_overlap=5)
        loose = form_triples(stats, 0, [1, 2, 3, 4], min_overlap=1)
        assert len(strict) <= len(loose)


class TestWeights:
    def test_uniform_weights(self):
        assert np.allclose(uniform_weights(4), 0.25)
        with pytest.raises(ConfigurationError):
            uniform_weights(0)

    def test_optimal_weights_sum_to_one(self):
        covariance = np.diag([0.1, 0.4, 0.9])
        assert optimal_weights(covariance).sum() == pytest.approx(1.0)

    def test_optimal_weights_single(self):
        assert optimal_weights(np.array([[0.5]])) == pytest.approx([1.0])

    def test_optimal_weights_match_brute_force(self):
        covariance = np.array([[0.05, 0.01, 0.0], [0.01, 0.2, 0.02], [0.0, 0.02, 0.4]])
        weights = optimal_weights(covariance)
        best_variance = combined_variance(weights, covariance)
        # Exhaustive grid over the simplex: no grid point should beat the
        # closed-form weights by more than numerical slack.
        grid = np.linspace(0.0, 1.0, 21)
        for w1, w2 in itertools.product(grid, grid):
            w3 = 1.0 - w1 - w2
            if w3 < 0.0:
                continue
            candidate = np.array([w1, w2, w3])
            assert best_variance <= combined_variance(candidate, covariance) + 1e-9

    def test_optimal_weights_handle_singular_covariance(self):
        singular = np.ones((3, 3)) * 0.2
        weights = optimal_weights(singular)
        assert np.all(np.isfinite(weights))
        assert weights.sum() == pytest.approx(1.0)

    def test_optimal_weights_validation(self):
        with pytest.raises(ConfigurationError):
            optimal_weights(np.ones((2, 3)))

    def test_combined_variance_validation(self):
        with pytest.raises(ConfigurationError):
            combined_variance(np.array([0.5, 0.5]), np.eye(3))

    def test_combined_variance_uniform_versus_optimal(self):
        covariance = np.diag([0.01, 1.0])
        optimal = optimal_weights(covariance)
        uniform = uniform_weights(2)
        assert combined_variance(optimal, covariance) < combined_variance(
            uniform, covariance
        )
