"""Unit tests for the k-ary estimator (Algorithm A3, Lemmas 6-9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kary import (
    KaryEstimator,
    count_covariance,
    evaluate_kary_triple,
    normalize_rows,
    prob_estimate,
    response_frequency_matrices,
)
from repro.core.kary import implied_selectivity
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.kary import PAPER_CONFUSION_MATRICES
from repro.types import EstimateStatus


def population_counts(
    confusions: list[np.ndarray], selectivity: np.ndarray, n_tasks: float
) -> np.ndarray:
    """Exact expected count tensor for three fully-overlapping workers."""
    k = confusions[0].shape[0]
    counts = np.zeros((k + 1, k + 1, k + 1))
    for truth in range(k):
        for a in range(k):
            for b in range(k):
                for c in range(k):
                    counts[a + 1, b + 1, c + 1] += (
                        n_tasks
                        * selectivity[truth]
                        * confusions[0][truth, a]
                        * confusions[1][truth, b]
                        * confusions[2][truth, c]
                    )
    return counts


class TestResponseFrequencyMatrices:
    def test_regular_counts_give_joint_probabilities(self):
        confusions = [PAPER_CONFUSION_MATRICES[2][i] for i in range(3)]
        selectivity = np.array([0.5, 0.5])
        counts = population_counts(confusions, selectivity, 1000.0)
        r_12, r_23, r_31 = response_frequency_matrices(counts)
        # Each matrix holds a joint distribution over the pair's responses.
        for matrix in (r_12, r_23, r_31):
            assert matrix.shape == (2, 2)
            assert matrix.sum() == pytest.approx(1.0)
        # Lemma 6: R_12 = P1^T S_D P2.
        expected = confusions[0].T @ np.diag(selectivity) @ confusions[1]
        assert np.allclose(r_12, expected, atol=1e-10)
        expected_23 = confusions[1].T @ np.diag(selectivity) @ confusions[2]
        assert np.allclose(r_23, expected_23, atol=1e-10)
        expected_31 = confusions[2].T @ np.diag(selectivity) @ confusions[0]
        assert np.allclose(r_31, expected_31, atol=1e-10)

    def test_counts_with_missing_worker_use_pair_denominator(self):
        counts = np.zeros((3, 3, 3))
        # 10 tasks answered by all three (agreeing on label 0).
        counts[1, 1, 1] = 10
        # 10 tasks answered by workers 1 and 2 only, with worker 2 answering 1.
        counts[1, 2, 0] = 10
        r_12, _, _ = response_frequency_matrices(counts)
        assert r_12[0, 0] == pytest.approx(0.5)
        assert r_12[0, 1] == pytest.approx(0.5)

    def test_missing_pair_overlap_raises(self):
        counts = np.zeros((3, 3, 3))
        counts[1, 1, 0] = 5  # only the (1,2) pair ever co-occurs
        with pytest.raises(InsufficientDataError):
            response_frequency_matrices(counts)


class TestProbEstimate:
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_recovers_confusion_matrices_from_population_counts(self, arity):
        """On exact (noise-free) counts, ProbEstimate recovers S^1/2 P_i."""
        confusions = [PAPER_CONFUSION_MATRICES[arity][i] for i in range(3)]
        selectivity = np.full(arity, 1.0 / arity)
        counts = population_counts(confusions, selectivity, 100000.0)
        v_estimates = prob_estimate(counts)
        for estimate, truth in zip(v_estimates, confusions):
            recovered = normalize_rows(estimate)
            assert np.allclose(recovered, truth, atol=0.02)

    def test_recovers_nonuniform_selectivity(self):
        confusions = [PAPER_CONFUSION_MATRICES[2][i] for i in range(3)]
        selectivity = np.array([0.7, 0.3])
        counts = population_counts(confusions, selectivity, 100000.0)
        v_1, _, _ = prob_estimate(counts)
        assert np.allclose(implied_selectivity(v_1), selectivity, atol=0.03)

    def test_rejects_non_cubic_tensor(self):
        with pytest.raises(ConfigurationError):
            prob_estimate(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            prob_estimate(np.zeros((3, 3, 4)))

    def test_rejects_arity_below_two(self):
        with pytest.raises(ConfigurationError):
            prob_estimate(np.zeros((2, 2, 2)))

    def test_requires_threeway_overlap(self):
        counts = np.zeros((3, 3, 3))
        counts[1, 1, 0] = 20
        counts[0, 1, 1] = 20
        counts[1, 0, 1] = 20
        with pytest.raises(InsufficientDataError):
            prob_estimate(counts)

    def test_normalize_rows_handles_zero_rows(self):
        matrix = np.array([[0.0, 0.0], [0.3, 0.1]])
        normalized = normalize_rows(matrix)
        assert normalized[0] == pytest.approx([0.5, 0.5])
        assert normalized[1] == pytest.approx([0.75, 0.25])


class TestCountCovariance:
    def setup_method(self):
        self.counts = np.zeros((3, 3, 3))
        self.counts[1, 1, 1] = 30.0
        self.counts[1, 2, 1] = 10.0
        self.counts[2, 2, 2] = 20.0
        self.counts[1, 1, 0] = 8.0
        self.counts[2, 1, 0] = 2.0

    def test_different_attempt_patterns_uncorrelated(self):
        assert count_covariance(self.counts, (1, 1, 1), (1, 1, 0)) == 0.0

    def test_same_cell_binomial_variance(self):
        n = 60.0  # tasks attempted by all three workers
        value = 30.0
        expected = value * (n - value) / n
        assert count_covariance(self.counts, (1, 1, 1), (1, 1, 1)) == pytest.approx(expected)

    def test_different_cells_same_pattern_negative(self):
        n = 60.0
        expected = -30.0 * 10.0 / n
        assert count_covariance(self.counts, (1, 1, 1), (1, 2, 1)) == pytest.approx(expected)

    def test_pair_only_pattern_uses_pair_total(self):
        n = 10.0  # tasks attempted by workers 1 and 2 only
        expected = 8.0 * (n - 8.0) / n
        assert count_covariance(self.counts, (1, 1, 0), (1, 1, 0)) == pytest.approx(expected)

    def test_all_zero_pattern_is_zero(self):
        assert count_covariance(self.counts, (0, 0, 0), (0, 0, 0)) == 0.0

    def test_empty_pattern_total_is_zero_covariance(self):
        counts = np.zeros((3, 3, 3))
        assert count_covariance(counts, (1, 1, 1), (1, 1, 1)) == 0.0


class TestKaryEstimator:
    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            KaryEstimator(confidence=1.0)
        with pytest.raises(ConfigurationError):
            KaryEstimator(epsilon=0.0)

    def test_output_structure(self, simulated_kary):
        matrix, _ = simulated_kary
        estimates = evaluate_kary_triple(matrix, confidence=0.8)
        assert len(estimates) == 3
        for estimate in estimates:
            assert estimate.arity == 3
            assert set(estimate.entries) == {
                (a, b) for a in range(3) for b in range(3)
            }
            for interval in (estimate.interval(a, b) for a in range(3) for b in range(3)):
                assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_point_estimates_close_to_truth(self, rng):
        from repro.simulation.kary import KaryWorkerPopulation

        confusions = [PAPER_CONFUSION_MATRICES[2][i].copy() for i in range(3)]
        population = KaryWorkerPopulation(confusion_matrices=confusions)
        matrix = population.generate(4000, rng)
        estimates = evaluate_kary_triple(matrix, confidence=0.8)
        for estimate, truth in zip(estimates, confusions):
            points = np.array(estimate.point_matrix())
            assert np.allclose(points, truth, atol=0.08)

    def test_requires_explicit_triple_for_more_workers(self, rng):
        from repro.simulation.kary import KaryWorkerPopulation

        population = KaryWorkerPopulation(
            confusion_matrices=[PAPER_CONFUSION_MATRICES[2][0]] * 4
        )
        matrix = population.generate(100, rng)
        with pytest.raises(ConfigurationError):
            evaluate_kary_triple(matrix, confidence=0.8)
        estimates = evaluate_kary_triple(matrix, confidence=0.8, workers=(0, 2, 3))
        assert {estimate.worker for estimate in estimates} == {0, 2, 3}

    def test_duplicate_workers_rejected(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            evaluate_kary_triple(matrix, confidence=0.8, workers=(0, 1, 1))

    def test_degenerate_data_returns_flagged_estimates(self):
        matrix = ResponseMatrix(3, 6, arity=2)
        # No task is answered by more than one worker.
        matrix.add_response(0, 0, 0)
        matrix.add_response(1, 1, 1)
        matrix.add_response(2, 2, 0)
        estimates = KaryEstimator(confidence=0.8).evaluate(matrix)
        assert all(estimate.status is EstimateStatus.DEGENERATE for estimate in estimates)
        assert all(
            estimate.interval(0, 0).size >= 0.9 for estimate in estimates
        )

    def test_evaluate_counts_arity_mismatch_rejected(self):
        counts = np.zeros((3, 3, 3))
        with pytest.raises(ConfigurationError):
            KaryEstimator().evaluate_counts(counts, arity=4)

    def test_binary_data_works_through_kary_path(self, rng):
        from repro.simulation.kary import KaryWorkerPopulation

        population = KaryWorkerPopulation(
            confusion_matrices=[PAPER_CONFUSION_MATRICES[2][i] for i in range(3)]
        )
        matrix = population.generate(500, rng, densities=0.7)
        estimates = evaluate_kary_triple(matrix, confidence=0.9)
        diag_means = [estimates[0].interval(a, a).mean for a in range(2)]
        assert all(mean > 0.5 for mean in diag_means)

    def test_unnormalized_mode_reports_v_matrices(self, simulated_kary):
        matrix, _ = simulated_kary
        estimator = KaryEstimator(confidence=0.8, normalize=False)
        estimates = estimator.evaluate(matrix)
        # Without normalization the rows estimate S^1/2 P, whose entries are
        # bounded by sqrt(S_a) < 1, so row sums are below 1.
        first = estimates[0]
        row_sum = sum(first.interval(0, b).mean for b in range(3))
        assert row_sum < 1.0
