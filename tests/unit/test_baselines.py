"""Unit tests for the baseline methods (old technique, majority, EM, gold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dawid_skene import dawid_skene
from repro.baselines.gold_standard import gold_standard_intervals
from repro.baselines.majority_vote import (
    majority_accuracy,
    majority_disagreement_rates,
    majority_vote_labels,
)
from repro.baselines.old_technique import OldTechniqueEstimator, evaluate_workers_old
from repro.core.m_worker import evaluate_all_workers
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.binary import BinaryWorkerPopulation
from repro.simulation.kary import KaryWorkerPopulation, PAPER_CONFUSION_MATRICES


class TestMajorityVote:
    def test_labels_follow_majority(self, small_binary_matrix):
        labels = majority_vote_labels(small_binary_matrix)
        assert labels[0] == 0  # two of three said 0
        assert labels[1] == 1

    def test_ties_broken_deterministically_without_rng(self):
        matrix = ResponseMatrix(2, 1)
        matrix.add_response(0, 0, 0)
        matrix.add_response(1, 0, 1)
        assert majority_vote_labels(matrix)[0] == 0  # lowest label wins

    def test_ties_broken_with_rng(self, rng):
        matrix = ResponseMatrix(2, 1)
        matrix.add_response(0, 0, 0)
        matrix.add_response(1, 0, 1)
        assert majority_vote_labels(matrix, rng)[0] in (0, 1)

    def test_unanswered_tasks_skipped(self):
        matrix = ResponseMatrix(2, 3)
        matrix.add_response(0, 0, 1)
        labels = majority_vote_labels(matrix)
        assert set(labels) == {0}

    def test_disagreement_rates(self, small_binary_matrix):
        rates = majority_disagreement_rates(small_binary_matrix)
        assert rates[2] == pytest.approx(3 / 8)

    def test_majority_accuracy(self, small_binary_matrix):
        assert majority_accuracy(small_binary_matrix) == pytest.approx(7 / 8)

    def test_majority_accuracy_requires_gold(self):
        matrix = ResponseMatrix(2, 2)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            majority_accuracy(matrix)


class TestGoldStandard:
    def test_intervals_match_empirical_rates(self, small_binary_matrix):
        results = gold_standard_intervals(small_binary_matrix, confidence=0.9)
        assert results[2].interval.contains(0.5)
        assert results[0].n_tasks == 8

    def test_wald_and_wilson_methods(self, small_binary_matrix):
        wilson = gold_standard_intervals(small_binary_matrix, 0.9, method="wilson")
        wald = gold_standard_intervals(small_binary_matrix, 0.9, method="wald")
        assert set(wilson) == set(wald)

    def test_unknown_method_rejected(self, small_binary_matrix):
        with pytest.raises(ConfigurationError):
            gold_standard_intervals(small_binary_matrix, 0.9, method="exactly")

    def test_requires_gold(self):
        matrix = ResponseMatrix(3, 3)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            gold_standard_intervals(matrix, 0.9)

    def test_workers_without_gold_answers_omitted(self, small_binary_matrix):
        matrix = small_binary_matrix.copy()
        # Remove all of worker 2's responses on gold-labelled tasks.
        for task in range(8):
            matrix.remove_response(2, task)
        results = gold_standard_intervals(matrix, 0.9)
        assert 2 not in results

    def test_coverage_on_simulated_data(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        hits = total = 0
        for _ in range(50):
            matrix = population.generate(100, rng)
            for worker, estimate in gold_standard_intervals(matrix, 0.9).items():
                total += 1
                if estimate.interval.contains(population.error_rates[worker]):
                    hits += 1
        assert hits / total > 0.8


class TestDawidSkene:
    def test_log_likelihood_non_decreasing(self, simulated_binary):
        matrix, _ = simulated_binary
        result = dawid_skene(matrix, max_iterations=30)
        trace = result.log_likelihood_trace
        assert all(later >= earlier - 1e-6 for earlier, later in zip(trace, trace[1:]))

    def test_recovers_error_rates_binary(self, rng):
        rates = np.array([0.05, 0.15, 0.3, 0.2, 0.1])
        population = BinaryWorkerPopulation(error_rates=rates)
        matrix = population.generate(800, rng, densities=0.9)
        result = dawid_skene(matrix)
        for worker in range(5):
            assert result.worker_error_rate(worker) == pytest.approx(
                rates[worker], abs=0.06
            )

    def test_recovers_labels_better_than_chance(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.2, 0.3]))
        matrix = population.generate(300, rng)
        result = dawid_skene(matrix)
        labels = result.most_likely_labels()
        correct = sum(
            1 for task, gold in matrix.gold_labels.items() if labels[task] == gold
        )
        assert correct / matrix.n_tasks > 0.9

    def test_kary_confusion_matrices_recovered(self, rng):
        confusions = [PAPER_CONFUSION_MATRICES[3][i].copy() for i in range(3)]
        population = KaryWorkerPopulation(confusion_matrices=confusions * 2)
        matrix = population.generate(600, rng, densities=0.9)
        result = dawid_skene(matrix)
        for worker, truth in enumerate(confusions * 2):
            assert np.allclose(result.confusion_matrices[worker], truth, atol=0.12)

    def test_converged_flag_and_iterations(self, simulated_binary):
        matrix, _ = simulated_binary
        result = dawid_skene(matrix, max_iterations=200, tolerance=1e-8)
        assert result.converged
        assert result.n_iterations <= 200

    def test_class_priors_sum_to_one(self, simulated_kary):
        matrix, _ = simulated_kary
        result = dawid_skene(matrix)
        assert result.class_priors.sum() == pytest.approx(1.0)

    def test_validation(self, simulated_binary):
        matrix, _ = simulated_binary
        with pytest.raises(ConfigurationError):
            dawid_skene(matrix, max_iterations=0)
        empty = ResponseMatrix(3, 3)
        with pytest.raises(InsufficientDataError):
            dawid_skene(empty)


class TestOldTechnique:
    def test_intervals_cover_truth_often(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        hits = total = 0
        for _ in range(30):
            matrix = population.generate(100, rng)
            for estimate in evaluate_workers_old(matrix, confidence=0.9):
                total += 1
                if estimate.interval.contains(population.error_rates[estimate.worker]):
                    hits += 1
        assert hits / total > 0.85

    def test_wider_than_new_technique(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.2, 0.1]))
        matrix = population.generate(120, rng)
        old = evaluate_workers_old(matrix, confidence=0.8)
        new = evaluate_all_workers(matrix, confidence=0.8)
        assert np.mean([e.interval.size for e in old]) > np.mean(
            [e.interval.size for e in new]
        )

    def test_interval_bounds_valid(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.3, 0.3, 0.3]))
        matrix = population.generate(40, rng)
        for estimate in evaluate_workers_old(matrix, confidence=0.5):
            interval = estimate.interval
            assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_super_workers_used_for_many_workers(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.full(7, 0.2))
        matrix = population.generate(100, rng)
        estimates = OldTechniqueEstimator(confidence=0.8).evaluate_all(matrix)
        assert len(estimates) == 7

    def test_rejects_kary_data(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            OldTechniqueEstimator().evaluate_worker(matrix, 0)

    def test_rejects_too_few_workers(self):
        matrix = ResponseMatrix(2, 10)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            OldTechniqueEstimator().evaluate_worker(matrix, 0)

    def test_confidence_validation(self):
        with pytest.raises(ConfigurationError):
            OldTechniqueEstimator(confidence=1.2)

    def test_deterministic_given_seed(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.full(5, 0.2))
        matrix = population.generate(60, rng)
        first = OldTechniqueEstimator(confidence=0.8, seed=3).evaluate_all(matrix)
        second = OldTechniqueEstimator(confidence=0.8, seed=3).evaluate_all(matrix)
        assert [e.interval.size for e in first] == [e.interval.size for e in second]
