"""Unit tests for the sparse/bitset backends and the cost-based dispatch.

Three concerns live here:

* the :func:`~repro.data.dense_backend.auto_backend_choice` cost model —
  boundary densities and cell counts pick the documented backend, and an
  explicit ``backend=`` request always wins;
* the backends themselves — exact count parity with the dense reference on
  every query surface, including the ``apply_response`` delta updates;
* the ``IncrementalEvaluator.extend_tasks`` auto-flip — re-resolving the
  cost model mid-stream may now land on sparse or bitset (not only dict),
  and every flip must stay invisible in results.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.data.dense_backend as dense_backend_module
import repro.data.sparse_backend as sparse_backend_module
from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.data.dense_backend import (
    AUTO_BITSET_CELL_LIMIT,
    AUTO_DENSE_CELL_LIMIT,
    AUTO_DENSE_WORKER_LIMIT,
    AUTO_SPARSE_DENSITY,
    AUTO_SPARSE_MIN_CELLS,
    BACKEND_CHOICES,
    DenseAgreementBackend,
    auto_backend_choice,
    resolve_backend,
)
from repro.data.response_matrix import ResponseMatrix
from repro.data.sparse_backend import (
    BitsetAgreementBackend,
    SparseAgreementBackend,
    scipy_available,
)
from repro.exceptions import ConfigurationError
from repro.simulation.binary import BinaryWorkerPopulation


#: Construction of SparseAgreementBackend needs a real scipy; every other
#: test runs on the scipy-less CI leg too (degradation is itself under test).
needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy not installed"
)


def random_matrix(seed: int, m: int, n: int, arity: int = 2, density=0.5):
    rng = np.random.default_rng(seed)
    matrix = ResponseMatrix(n_workers=m, n_tasks=n, arity=arity)
    for worker in range(m):
        for task in np.nonzero(rng.random(n) < density)[0]:
            matrix.add_response(worker, int(task), int(rng.integers(0, arity)))
    return matrix


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #


class TestAutoBackendChoice:
    def test_worker_limit_always_dict(self):
        m = AUTO_DENSE_WORKER_LIMIT + 1
        assert auto_backend_choice(m, 10, 10, sparse_available=True) == "dict"

    def test_small_grids_stay_dense_regardless_of_fill(self):
        # At or below AUTO_SPARSE_MIN_CELLS the dense build is trivially
        # cheap; even a 0.1% fill must not flip to sparse.
        assert auto_backend_choice(100, 1000, 100, sparse_available=True) == "dense"
        m, n = 1024, AUTO_SPARSE_MIN_CELLS // 1024
        assert auto_backend_choice(m, n, 10, sparse_available=True) == "dense"

    def test_density_boundary_inside_dense_limit(self):
        m = 1000
        n = (AUTO_SPARSE_MIN_CELLS // m) + 1000  # just above the min-cells gate
        cells = m * n
        just_below = int(cells * AUTO_SPARSE_DENSITY) - 1
        at_threshold = int(np.ceil(cells * AUTO_SPARSE_DENSITY))
        assert auto_backend_choice(m, n, just_below, sparse_available=True) == "sparse"
        assert auto_backend_choice(m, n, at_threshold, sparse_available=True) == "dense"

    def test_sparse_needs_scipy(self):
        m = 1000
        n = (AUTO_SPARSE_MIN_CELLS // m) + 1000
        assert auto_backend_choice(m, n, 100, sparse_available=False) == "dense"

    def test_dense_cell_limit_boundary(self):
        m = 100
        n_fit = AUTO_DENSE_CELL_LIMIT // m
        n_over = n_fit + 1
        dense_fill = int(m * n_over * 0.5)
        # At the limit the dense arrays fit; one cell over, they do not and
        # the well-filled grid falls to the bitset planes.
        assert auto_backend_choice(m, n_fit, dense_fill, sparse_available=True) == "dense"
        assert (
            auto_backend_choice(m, n_over, dense_fill, sparse_available=True)
            == "bitset"
        )

    def test_sparse_beyond_dense_limit(self):
        m = 100
        n = AUTO_DENSE_CELL_LIMIT // m + 1
        sparse_fill = int(m * n * AUTO_SPARSE_DENSITY) - 1
        assert auto_backend_choice(m, n, sparse_fill, sparse_available=True) == "sparse"
        # Without scipy the same shape degrades to the bitset planes.
        assert auto_backend_choice(m, n, sparse_fill, sparse_available=False) == "bitset"

    def test_bitset_ceiling_falls_to_dict(self):
        m = 100
        n = AUTO_BITSET_CELL_LIMIT // m + 1
        dense_fill = int(m * n * 0.5)
        assert auto_backend_choice(m, n, dense_fill, sparse_available=True) == "dict"

    def test_bitset_ceiling_scales_with_arity(self):
        # Bitset storage is (arity + 1) planes; at the binary ceiling a
        # 15-ary grid would cost >5x the budget, so the model must refuse.
        m = 100
        n = AUTO_BITSET_CELL_LIMIT // m  # exactly the binary ceiling
        dense_fill = int(m * n * 0.5)
        assert (
            auto_backend_choice(m, n, dense_fill, sparse_available=False)
            == "bitset"
        )
        assert (
            auto_backend_choice(m, n, dense_fill, sparse_available=False, arity=15)
            == "dict"
        )


class TestResolveBackend:
    def test_explicit_backend_always_wins(self, monkeypatch):
        # Shrink every auto limit below the matrix: explicit requests must
        # ignore all of them.
        monkeypatch.setattr(dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 1)
        monkeypatch.setattr(dense_backend_module, "AUTO_BITSET_CELL_LIMIT", 1)
        monkeypatch.setattr(dense_backend_module, "AUTO_SPARSE_MIN_CELLS", 0)
        matrix = random_matrix(7, 6, 30)
        assert isinstance(resolve_backend(matrix, "dense"), DenseAgreementBackend)
        assert isinstance(resolve_backend(matrix, "bitset"), BitsetAgreementBackend)
        if scipy_available():
            assert isinstance(
                resolve_backend(matrix, "sparse"), SparseAgreementBackend
            )
        assert resolve_backend(matrix, "dict") is None
        assert resolve_backend(matrix, "auto") is None  # every limit shrunk -> dict

    def test_instance_passthrough(self):
        matrix = random_matrix(8, 5, 20)
        for cls in (DenseAgreementBackend, BitsetAgreementBackend):
            instance = cls(matrix)
            assert resolve_backend(matrix, instance) is instance

    def test_unknown_backend_rejected(self):
        matrix = random_matrix(9, 4, 10)
        with pytest.raises(ConfigurationError):
            resolve_backend(matrix, "gpu")

    def test_backend_choices_cover_new_backends(self):
        assert {"auto", "dense", "dict", "sparse", "bitset"} == set(BACKEND_CHOICES)

    def test_capability_flags(self):
        # Every vectorized backend ships shared-state export now; only the
        # dict path (no backend object at all) falls back serial.
        matrix = random_matrix(10, 5, 20)
        assert DenseAgreementBackend(matrix).supports_shared_export
        assert BitsetAgreementBackend(matrix).supports_shared_export
        assert BitsetAgreementBackend(matrix).name == "bitset"
        assert SparseAgreementBackend.supports_shared_export
        assert SparseAgreementBackend.name == "sparse"

    def test_sparse_without_scipy_degrades_to_dense(self, monkeypatch):
        monkeypatch.setattr(sparse_backend_module, "_SCIPY_OVERRIDE", False)
        assert not scipy_available()
        matrix = random_matrix(11, 6, 30)
        resolved = resolve_backend(matrix, "sparse")
        assert isinstance(resolved, DenseAgreementBackend)
        assert not isinstance(resolved, BitsetAgreementBackend)
        with pytest.raises(ConfigurationError):
            SparseAgreementBackend(matrix)

    def test_sparse_without_scipy_degrades_to_bitset_beyond_dense_limit(
        self, monkeypatch
    ):
        monkeypatch.setattr(sparse_backend_module, "_SCIPY_OVERRIDE", False)
        monkeypatch.setattr(dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 10)
        matrix = random_matrix(12, 6, 30)
        assert isinstance(resolve_backend(matrix, "sparse"), BitsetAgreementBackend)


# --------------------------------------------------------------------------- #
# Backend count parity
# --------------------------------------------------------------------------- #


@pytest.fixture(
    params=["bitset", pytest.param("sparse", marks=needs_scipy)]
)
def backend_cls(request):
    return {
        "bitset": BitsetAgreementBackend,
        "sparse": SparseAgreementBackend,
    }[request.param]


class TestBackendParity:
    @pytest.mark.parametrize("seed,m,n,arity,density", [
        (21, 8, 40, 2, 0.5),
        (22, 6, 64, 3, 0.25),
        (23, 10, 33, 4, 0.8),
        (24, 7, 50, 2, 0.04),
    ])
    def test_counts_match_dense(self, backend_cls, seed, m, n, arity, density):
        matrix = random_matrix(seed, m, n, arity=arity, density=density)
        dense = DenseAgreementBackend(matrix)
        other = backend_cls(matrix)
        assert np.array_equal(other.common_counts, dense.common_counts)
        assert np.array_equal(other.agreement_counts, dense.agreement_counts)
        assert np.array_equal(other.task_votes, dense.task_votes)
        assert (
            other.majority_disagreement_rates()
            == dense.majority_disagreement_rates()
        )
        partners = np.arange(1, m)
        assert np.array_equal(
            other.triple_count_matrix(0, partners),
            dense.triple_count_matrix(0, partners),
        )
        for worker in range(m):
            assert np.array_equal(
                np.asarray(other.triple_count_grid_full(worker), dtype=np.float64),
                np.asarray(dense.triple_count_grid_full(worker), dtype=np.float64),
            )
        workers = (0, m // 2, m - 1)
        assert np.array_equal(
            other.response_count_tensor(workers),
            dense.response_count_tensor(workers),
        )
        rates, two_q, flags = other.clamped_rate_data(0.05)
        d_rates, d_two_q, d_flags = dense.clamped_rate_data(0.05)
        assert np.array_equal(rates, d_rates, equal_nan=True)
        assert np.array_equal(two_q, d_two_q, equal_nan=True)
        assert np.array_equal(flags, d_flags)

    def test_empty_and_full_rows(self, backend_cls):
        matrix = ResponseMatrix(n_workers=4, n_tasks=10, arity=2)
        for task in range(10):
            matrix.add_response(1, task, task % 2)
        matrix.add_response(2, 3, 1)
        dense = DenseAgreementBackend(matrix)
        other = backend_cls(matrix)
        assert np.array_equal(other.common_counts, dense.common_counts)
        assert np.array_equal(other.agreement_counts, dense.agreement_counts)
        assert (
            other.majority_disagreement_rates()
            == dense.majority_disagreement_rates()
        )

    def test_apply_response_parity(self, backend_cls):
        matrix = random_matrix(31, 7, 29, arity=3, density=0.4)
        dense = DenseAgreementBackend(matrix)
        other = backend_cls(matrix)
        # Materialize everything up front so the deltas patch, not rebuild.
        for backend in (dense, other):
            backend.common_counts
            backend.agreement_counts
            backend.task_votes
        rng = np.random.default_rng(31)
        shadow = {
            (w, t): matrix.response(w, t)
            for w in range(7)
            for t in range(29)
            if matrix.response(w, t) is not None
        }
        for _ in range(120):
            worker = int(rng.integers(0, 7))
            task = int(rng.integers(0, 29))
            label = int(rng.integers(0, 3))
            previous = shadow.get((worker, task))
            dense.apply_response(worker, task, label, previous)
            other.apply_response(worker, task, label, previous)
            shadow[(worker, task)] = label
        assert np.array_equal(other.common_counts, dense.common_counts)
        assert np.array_equal(other.agreement_counts, dense.agreement_counts)
        assert np.array_equal(other.task_votes, dense.task_votes)
        partners = np.arange(1, 7)
        assert np.array_equal(
            other.triple_count_matrix(0, partners),
            dense.triple_count_matrix(0, partners),
        )
        assert other.pair(0, 1) == dense.pair(0, 1)
        assert other.triple_common_count(0, 1, 2) == dense.triple_common_count(0, 1, 2)

    def test_apply_response_validation(self, backend_cls):
        from repro.exceptions import DataValidationError

        backend = backend_cls(random_matrix(32, 5, 16))
        with pytest.raises(DataValidationError):
            backend.apply_response(99, 0, 1)
        with pytest.raises(DataValidationError):
            backend.apply_response(0, 99, 1)
        with pytest.raises(DataValidationError):
            backend.apply_response(0, 0, 7)


# --------------------------------------------------------------------------- #
# extend_tasks auto-flip across the new cost-model tiers
# --------------------------------------------------------------------------- #


class TestExtendTasksAutoFlip:
    def _run_flip(self, monkeypatch, expected_cls, rng):
        """Shared scenario: warm a dense-backed evaluator, grow the task
        space so the cost model flips to ``expected_cls``, keep streaming,
        and verify everything served equals a fresh batch run."""
        n_workers, initial_tasks, extra_tasks = 6, 30, 90
        incremental = IncrementalEvaluator(
            n_workers, initial_tasks, confidence=0.9, backend="auto"
        )
        assert isinstance(incremental._backend, DenseAgreementBackend)
        assert not isinstance(incremental._backend, BitsetAgreementBackend)

        population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
        early = population.generate(initial_tasks, rng, densities=0.75)
        incremental.add_responses(early.iter_responses())
        incremental.estimate_all()

        incremental.extend_tasks(extra_tasks)
        assert isinstance(incremental._backend, expected_cls)
        # Empty tasks change no statistic: caches survive the flip.
        assert not incremental.dirty_workers

        late = population.generate(extra_tasks, rng, densities=0.2)
        incremental.add_responses(
            (worker, task + initial_tasks, label)
            for worker, task, label in late.iter_responses()
        )
        served = incremental.estimate_all()
        reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(
            incremental.matrix
        )
        for ref in reference:
            if ref.n_tasks == 0:
                continue
            estimate = served[ref.worker]
            assert estimate.interval.mean == ref.interval.mean
            assert estimate.interval.lower == ref.interval.lower
            assert estimate.interval.upper == ref.interval.upper
            assert estimate.interval.deviation == ref.interval.deviation
            assert estimate.weights == ref.weights
            assert estimate.status is ref.status

    def test_flip_to_bitset(self, rng, monkeypatch):
        # Grown grid exceeds the (shrunk) dense cell limit but fits the
        # bitset ceiling; the fill stays above the sparse density cut.
        monkeypatch.setattr(dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 240)
        self._run_flip(monkeypatch, BitsetAgreementBackend, rng)

    def test_flip_to_sparse(self, rng, monkeypatch):
        if not scipy_available():  # pragma: no cover - scipy-less CI leg
            pytest.skip("scipy not installed")
        # Grown grid crosses the (shrunk) min-cells gate with a fill below
        # the (raised) density cut: the cost model lands on sparse.
        monkeypatch.setattr(dense_backend_module, "AUTO_SPARSE_MIN_CELLS", 240)
        monkeypatch.setattr(dense_backend_module, "AUTO_SPARSE_DENSITY", 0.6)
        self._run_flip(monkeypatch, SparseAgreementBackend, rng)

    def test_flip_to_dict_stays_locked(self, rng, monkeypatch):
        # The historical dense -> dict flip, now requiring every vectorized
        # tier to be exhausted (kept in sync with the identical scenario in
        # test_incremental_and_new_baselines.py).
        monkeypatch.setattr(dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 240)
        monkeypatch.setattr(dense_backend_module, "AUTO_BITSET_CELL_LIMIT", 240)
        n_workers, initial_tasks = 6, 30
        incremental = IncrementalEvaluator(
            n_workers, initial_tasks, confidence=0.9, backend="auto"
        )
        population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
        incremental.add_responses(
            population.generate(initial_tasks, rng, densities=0.75).iter_responses()
        )
        incremental.extend_tasks(30)
        assert incremental._backend is None
