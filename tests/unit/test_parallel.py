"""Unit tests for the reusable parallel execution layer.

The cross-backend differential suite owns bit-identity of every tier; these
tests pin the layer's own contracts: spec parsing, the ``"auto"`` cost
model, executor pool reuse and shutdown semantics, the O(1) matrix view,
and that a failed process-sharded call never leaks shared memory.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory

import numpy as np
import pytest

import repro.core.parallel as parallel_module
from repro.core.m_worker import MWorkerEstimator
from repro.core.agreement import compute_agreement_statistics
from repro.core.parallel import (
    AUTO_SHARD_PROCESS_MIN_WORK,
    AUTO_SHARD_THREAD_MIN_WORK,
    MAX_AUTO_SHARDS,
    ShardExecutor,
    SharedMatrixView,
    auto_shard_choice,
    contiguous_ranges,
    evaluate_all_process,
    get_executor,
    parse_shard_spec,
)
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError


def build_matrix(seed: int = 7, n_workers: int = 9, n_tasks: int = 40):
    rng = np.random.default_rng(seed)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
    for worker in range(n_workers):
        for task in range(n_tasks):
            if rng.random() < 0.8:
                good = rng.random() < (0.9 - 0.05 * worker)
                matrix.add_response(worker, task, int(good))
    return matrix


class TestParseShardSpec:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            (1, ("serial", 1)),
            ("1", ("serial", 1)),
            (5, ("process", 5)),
            ("6", ("process", 6)),
            ("auto", ("auto", None)),
            ("  AUTO ", ("auto", None)),
            ("thread:3", ("thread", 3)),
            ("process:2", ("process", 2)),
            # N == 1 collapses to serial regardless of the pinned tier
            ("thread:1", ("serial", 1)),
            ("process:1", ("serial", 1)),
        ],
    )
    def test_accepted_specs(self, spec, expected):
        assert parse_shard_spec(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        [0, -2, True, 2.5, "0", "-3", "thread:0", "process:-1",
         "thread:x", "bogus", ""],
    )
    def test_rejected_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_shard_spec(spec)


class TestAutoShardChoice:
    def test_single_core_hosts_always_serial(self):
        assert auto_shard_choice(500, 20_000, 500 * 20_000, cores=1) == ("serial", 1)

    def test_tiny_worker_counts_always_serial(self):
        assert auto_shard_choice(3, 1_000_000, 3_000_000, cores=8) == ("serial", 1)

    def test_small_work_stays_serial(self):
        # 10 workers x 10 tasks, fully filled: work proxy far below 2^22.
        assert auto_shard_choice(10, 10, 100, cores=8) == ("serial", 1)

    def test_medium_work_picks_thread_tier(self):
        # 200 x 2000 fully filled: 8e7 sits between the 2^22 and 2^27 limits.
        work = 200 * 200 * 2000
        assert AUTO_SHARD_THREAD_MIN_WORK <= work < AUTO_SHARD_PROCESS_MIN_WORK
        assert auto_shard_choice(200, 2000, 200 * 2000, cores=8) == ("thread", 8)

    def test_large_work_picks_process_tier(self):
        # 500 x 20000 at 10% fill clears the process threshold.
        responses = 500 * 20_000 // 10
        work = 500 * 500 * 20_000 // 10
        assert work >= AUTO_SHARD_PROCESS_MIN_WORK
        assert auto_shard_choice(500, 20_000, responses, cores=4) == ("process", 4)

    def test_shard_count_capped_by_cores_and_ceiling(self):
        tier, shards = auto_shard_choice(500, 20_000, 500 * 20_000, cores=32)
        assert tier == "process"
        assert shards == MAX_AUTO_SHARDS
        assert auto_shard_choice(500, 20_000, 500 * 20_000, cores=2)[1] == 2

    def test_fill_scales_the_work_proxy_down(self):
        # The same shape that picks thread when full drops to serial when
        # nearly empty — the proxy is responses-aware, not shape-aware.
        assert auto_shard_choice(200, 2000, 200 * 2000, cores=8)[0] == "thread"
        assert auto_shard_choice(200, 2000, 2000, cores=8) == ("serial", 1)


class TestContiguousRanges:
    @pytest.mark.parametrize("n,shards", [(10, 3), (10, 10), (7, 2), (16, 4)])
    def test_ranges_partition_worker_order(self, n, shards):
        ranges = contiguous_ranges(n, shards)
        assert len(ranges) == shards
        covered = [w for start, stop in ranges for w in range(start, stop)]
        assert covered == list(range(n))


class TestSharedMatrixView:
    def test_constant_time_counts_and_properties(self):
        counts = np.array([5, 0, 12], dtype=np.int64)
        view = SharedMatrixView(counts, n_tasks=40, arity=2)
        assert view.n_workers == 3
        assert view.n_tasks == 40
        assert view.arity == 2
        assert view.is_binary
        assert [view.n_tasks_of(w) for w in range(3)] == [5, 0, 12]

    def test_non_binary_flag(self):
        view = SharedMatrixView(np.array([1], dtype=np.int64), n_tasks=4, arity=3)
        assert not view.is_binary


class TestShardExecutor:
    def test_thread_pools_cached_by_size(self):
        with ShardExecutor() as executor:
            pool_two = executor.thread_pool(2)
            assert executor.thread_pool(2) is pool_two
            assert executor.thread_pool(3) is not pool_two
        assert executor.closed

    def test_shutdown_is_idempotent_and_closes_pool_use(self):
        executor = ShardExecutor()
        executor.thread_pool(2)
        executor.shutdown()
        executor.shutdown()
        assert executor.closed
        with pytest.raises(ConfigurationError):
            executor.thread_pool(2)
        with pytest.raises(ConfigurationError):
            executor.process_pool(2)

    def test_get_executor_is_shared_and_recreated_after_shutdown(self):
        shared = get_executor()
        assert get_executor() is shared
        shared.shutdown()
        fresh = get_executor()
        assert fresh is not shared
        assert not fresh.closed

    def test_process_pool_reused_across_evaluations(self):
        matrix = build_matrix()
        serial = MWorkerEstimator(confidence=0.9, backend="dense").evaluate_all(
            matrix
        )
        estimator = MWorkerEstimator(confidence=0.9, backend="dense", shards=2)
        first = estimator.evaluate_all(matrix)
        pool = get_executor().process_pool(2)
        second = estimator.evaluate_all(matrix)
        assert get_executor().process_pool(2) is pool
        assert first == serial
        assert second == serial


class TestShardedModuleRemoved:
    def test_import_fails_with_a_pointer_to_parallel(self):
        # repro.core.sharded finished its deprecation cycle: importing it
        # must fail loudly with migration guidance, and a failed module
        # execution must not stick around in sys.modules — a second import
        # attempt raises the same error rather than yielding a broken
        # half-module.
        import importlib
        import sys

        for _ in range(2):
            with pytest.raises(ImportError, match="repro.core.parallel"):
                importlib.import_module("repro.core.sharded")
            assert "repro.core.sharded" not in sys.modules


class TestExportCleanup:
    def _recording_export(self, monkeypatch):
        original = parallel_module._export_array
        exported: list[str] = []

        def recording(array):
            segment, spec = original(array)
            exported.append(spec.name)
            return segment, spec

        monkeypatch.setattr(parallel_module, "_export_array", recording)
        return exported

    def _assert_all_unlinked(self, names):
        assert names, "the export step never ran"
        for name in names:
            with pytest.raises(FileNotFoundError):
                SharedMemory(name=name)

    def test_failed_dispatch_unlinks_every_segment(self, monkeypatch):
        exported = self._recording_export(monkeypatch)

        class FailingPool:
            def map(self, func, payloads):
                raise RuntimeError("pool initializer died")

        class FailingExecutor:
            def process_pool(self, shards):
                return FailingPool()

        monkeypatch.setattr(
            parallel_module, "get_executor", lambda: FailingExecutor()
        )
        matrix = build_matrix()
        estimator = MWorkerEstimator(confidence=0.9, backend="dense", shards=2)
        stats = compute_agreement_statistics(matrix, backend="dense")
        with pytest.raises(RuntimeError, match="pool initializer died"):
            evaluate_all_process(estimator, matrix, stats, 2)
        self._assert_all_unlinked(exported)

    def test_failed_export_unlinks_earlier_segments(self, monkeypatch):
        exported = self._recording_export(monkeypatch)
        recording = parallel_module._export_array
        calls = {"n": 0}

        def failing(array):
            calls["n"] += 1
            if calls["n"] == 3:
                raise OSError("shared memory exhausted")
            return recording(array)

        monkeypatch.setattr(parallel_module, "_export_array", failing)
        matrix = build_matrix()
        estimator = MWorkerEstimator(confidence=0.9, backend="dense", shards=2)
        stats = compute_agreement_statistics(matrix, backend="dense")
        with pytest.raises(OSError, match="shared memory exhausted"):
            evaluate_all_process(estimator, matrix, stats, 2)
        assert len(exported) == 2
        self._assert_all_unlinked(exported)
