"""Unit tests for the streaming ingestion subsystem (:mod:`repro.serve`).

Covers the queue semantics (bounded backpressure, FIFO coalescing, close),
the session contract (flush ordering, reader-snapshot consistency under
concurrent submits, auto-extension, error surfacing, per-batch stats), the
NDJSON server protocol, and the locked acceptance bound: micro-batched
application pays at least 3x fewer backend invalidation passes than
singleton applies on a 10k-event stream while staying bit-identical.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.exceptions import ConfigurationError, DataValidationError
from repro.serve import (
    QueueClosed,
    ResponseQueue,
    StreamSession,
    parse_event,
)
from repro.serve.server import serve_ndjson


def run(coro):
    return asyncio.run(coro)


def make_stream(n_events, n_workers, n_tasks, seed):
    rng = np.random.default_rng(seed)
    return [
        (int(w), int(t), int(label))
        for w, t, label in zip(
            rng.integers(0, n_workers, size=n_events),
            rng.integers(0, n_tasks, size=n_events),
            rng.integers(0, 2, size=n_events),
        )
    ]


def assert_bit_identical(streamed, matrix, confidence=0.95):
    """The streamed estimates equal a from-scratch dict-backend build."""
    reference = MWorkerEstimator(confidence=confidence, backend="dict").evaluate_all(
        matrix
    )
    expected = {e.worker: e for e in reference if e.n_tasks > 0}
    assert set(streamed) == set(expected)
    for worker, ref in expected.items():
        est = streamed[worker]
        assert est.interval.mean == ref.interval.mean
        assert est.interval.lower == ref.interval.lower
        assert est.interval.upper == ref.interval.upper
        assert est.interval.deviation == ref.interval.deviation
        assert est.weights == ref.weights
        assert est.status is ref.status


class TestResponseQueue:
    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ResponseQueue(maxsize=0)
        with pytest.raises(ConfigurationError):
            ResponseQueue(max_batch=0)

    def test_fifo_coalescing_respects_max_batch(self):
        async def scenario():
            queue = ResponseQueue(maxsize=16, max_batch=3)
            for value in range(5):
                await queue.put(value)
            first = await queue.get_batch()
            second = await queue.get_batch()
            return first, second

        first, second = run(scenario())
        assert first == [0, 1, 2]
        assert second == [3, 4]

    def test_get_batch_waits_for_first_event(self):
        async def scenario():
            queue = ResponseQueue()

            async def producer():
                await asyncio.sleep(0.01)
                await queue.put("late")

            task = asyncio.get_running_loop().create_task(producer())
            batch = await queue.get_batch()
            await task
            return batch

        assert run(scenario()) == ["late"]

    def test_backpressure_blocks_producer_until_drained(self):
        async def scenario():
            queue = ResponseQueue(maxsize=2)
            await queue.put(0)
            await queue.put(1)
            blocked = asyncio.get_running_loop().create_task(queue.put(2))
            await asyncio.sleep(0.01)
            assert not blocked.done()  # full queue parks the producer
            batch = await queue.get_batch()
            await asyncio.wait_for(blocked, timeout=1.0)  # drained -> resumes
            rest = await queue.get_batch()
            return batch, rest

        batch, rest = run(scenario())
        assert batch == [0, 1]
        assert rest == [2]

    def test_close_delivers_tail_then_none_and_rejects_puts(self):
        async def scenario():
            queue = ResponseQueue(max_batch=8)
            await queue.put("a")
            await queue.put("b")
            await queue.close()
            await queue.close()  # idempotent
            with pytest.raises(QueueClosed):
                await queue.put("c")
            with pytest.raises(QueueClosed):
                queue.put_nowait("c")
            tail = await queue.get_batch()
            done = await queue.get_batch()
            again = await queue.get_batch()
            return tail, done, again

        tail, done, again = run(scenario())
        assert tail == ["a", "b"]
        assert done is None
        assert again is None


class TestStreamSession:
    def test_submit_requires_running_session(self):
        async def scenario():
            session = StreamSession()
            with pytest.raises(ConfigurationError):
                await session.submit(0, 0, 1)

        run(scenario())

    def test_flush_gives_read_your_writes_and_ordered_application(self):
        """Revisions of the same cell must land in submission order, and
        flush must make everything submitted visible."""

        async def scenario():
            async with StreamSession(max_batch=4) as session:
                await session.submit(0, 0, 1)
                await session.submit(1, 0, 0)
                await session.submit(0, 0, 0)  # revision, must win
                await session.submit(2, 0, 1)
                await session.submit(0, 0, 1)  # second revision, must win
                applied = await session.flush()
                matrix = session.evaluator.matrix
                assert applied == 5
                assert session.pending_events == 0
                assert matrix.response(0, 0) == 1
                assert matrix.response(1, 0) == 0
                records = session.applied_batches
                # Contiguous, ordered sequence ranges with no gaps.
                assert records[0].first_seq == 1
                for before, after in zip(records, records[1:]):
                    assert after.first_seq == before.last_seq + 1
                assert records[-1].last_seq == 5

        run(scenario())

    @pytest.mark.parametrize("backend", ["dense", "bitset"])
    def test_streamed_estimates_bit_identical_with_mid_stream_reads(self, backend):
        events = make_stream(600, 10, 50, seed=31)

        async def scenario():
            async with StreamSession(backend=backend, max_batch=19) as session:
                for index, event in enumerate(events):
                    await session.submit(*event)
                    if index in (151, 449):
                        await session.evaluate_all()  # warm caches mid-stream
                await session.flush()
                estimates = await session.evaluate_all()
                return estimates, session.evaluator.matrix.copy()

        estimates, matrix = run(scenario())
        assert_bit_identical(estimates, matrix)

    def test_reader_snapshots_are_consistent_under_concurrent_submits(self):
        """Snapshots taken while a producer keeps submitting must always
        show a whole number of applied batches, and their estimates must
        equal a from-scratch batch build over the snapshot matrix."""
        events = make_stream(800, 8, 40, seed=77)

        async def scenario():
            snapshots = []
            async with StreamSession(max_batch=13, maxsize=32) as session:

                async def producer():
                    for event in events:
                        await session.submit(*event)

                task = asyncio.get_running_loop().create_task(producer())
                while not task.done():
                    snapshots.append(await session.snapshot())
                    await asyncio.sleep(0)
                await task
                await session.flush()
                snapshots.append(await session.snapshot())
                return snapshots, session.applied_batches

            return snapshots

        snapshots, batches = run(scenario())
        boundaries = {0}
        total = 0
        for record in batches:
            total += record.last_seq - record.first_seq + 1
            boundaries.add(record.last_seq)
        assert total == len(events)
        mid_stream = 0
        for snapshot in snapshots:
            # Only whole batches are ever visible.
            assert snapshot.applied_events in boundaries
            if 0 < snapshot.applied_events < len(events):
                mid_stream += 1
            if snapshot.estimates:
                assert_bit_identical(snapshot.estimates, snapshot.matrix)
        assert snapshots[-1].applied_events == len(events)
        assert mid_stream > 0  # the scenario really did read mid-stream

    def test_auto_extends_for_unseen_ids_without_rebuilds(self):
        async def scenario():
            async with StreamSession(backend="dense", max_batch=8) as session:
                await session.submit(0, 0, 1)
                await session.submit(14, 90, 0)  # far beyond (3, 1)
                await session.submit(7, 30, 1)
                await session.flush()
                evaluator = session.evaluator
                assert evaluator.matrix.n_workers == 15
                assert evaluator.matrix.n_tasks == 91
                assert evaluator.backend_rebuilds == 0
                assert evaluator.matrix.response(14, 90) == 0

        run(scenario())

    def test_ingestion_error_surfaces_on_flush_submit_and_close(self):
        async def scenario():
            session = StreamSession(auto_extend=False)
            session.start()
            await session.submit(-3, 0, 1)  # invalid id: fails in apply
            with pytest.raises(DataValidationError):
                await session.flush()
            with pytest.raises(DataValidationError):
                await session.submit(0, 0, 1)
            with pytest.raises(DataValidationError):
                await session.close()

        run(scenario())

    def test_spammer_scores_flag_planted_spammer(self):
        rng = np.random.default_rng(5)
        truth = rng.integers(0, 2, size=60)

        async def scenario():
            async with StreamSession() as session:
                for worker in range(5):
                    for task in range(60):
                        if worker == 4:  # coin-flip spammer
                            label = int(rng.integers(0, 2))
                        else:
                            label = int(truth[task])
                        await session.submit(worker, task, label)
                await session.flush()
                return await session.spammer_scores()

        scores = run(scenario())
        assert set(scores) == {0, 1, 2, 3, 4}
        assert scores[4] is not None and scores[4] > 0.25
        assert all(scores[worker] == 0.0 for worker in range(4))

    def test_batch_stats_report_invalidations(self):
        events = make_stream(400, 6, 30, seed=9)

        async def scenario():
            async with StreamSession(backend="dense", max_batch=50) as session:
                await session.submit_many(events[:200])
                await session.flush()
                await session.evaluate_all()  # build caches
                await session.submit_many(events[200:])
                await session.flush()
                return session.applied_batches

        records = run(scenario())
        assert sum(r.stats.n_events for r in records) == 400
        # Each statistic-changing batch pays exactly one backend pass.
        assert all(r.stats.backend_invalidations <= 1 for r in records)
        # Batches landing after the warm-up read invalidate cached workers.
        warm = [r for r in records if r.first_seq > 200 and r.stats.n_changed]
        assert warm and any(r.stats.cached_invalidated > 0 for r in warm)


class TestApplyBatchAtomicity:
    def test_invalid_event_mid_batch_applies_nothing(self):
        """Regression: a mid-batch invalid event must not leave the matrix
        and the statistics backend divergent — the whole batch is validated
        before anything mutates, so the failure is clean."""
        evaluator = IncrementalEvaluator(4, 10, backend="dense")
        evaluator.add_responses([(0, 0, 1), (1, 0, 1), (2, 0, 0), (3, 1, 1)])
        passes_before = evaluator._backend.invalidation_events
        with pytest.raises(DataValidationError):
            evaluator.apply_batch(
                [(0, 1, 1), (1, 1, 9), (2, 1, 0)]  # label 9 out of arity
            )
        assert evaluator.matrix.n_responses == 4  # nothing landed
        assert evaluator.matrix.response(0, 1) is None
        assert evaluator.n_responses == 4
        assert evaluator._backend.invalidation_events == passes_before
        # Negative ids are rejected the same way (auto-extend never grows
        # for them).
        with pytest.raises(DataValidationError):
            evaluator.apply_batch([(0, 2, 1), (-1, 2, 0)])
        assert evaluator.matrix.n_responses == 4
        # The evaluator is still healthy: subsequent valid batches apply
        # and serve estimates equal to a from-scratch build.
        evaluator.apply_batch([(0, 1, 1), (1, 1, 0), (2, 1, 0), (3, 0, 1)])
        assert_bit_identical(evaluator.estimate_all(), evaluator.matrix)


class TestConcurrencyRegressions:
    def test_applier_failure_wakes_parked_producers(self):
        """Regression: after an ingestion error the applier keeps draining,
        so a producer parked on the full queue surfaces the error instead
        of deadlocking (and close() can always land its marker)."""

        async def scenario():
            session = StreamSession(auto_extend=False, maxsize=2, max_batch=1)
            session.start()
            await session.submit(-5, 0, 1)  # will fail in apply

            async def spam():
                for _ in range(50):
                    await session.submit(0, 0, 1)

            with pytest.raises(DataValidationError):
                await asyncio.wait_for(spam(), timeout=5)
            with pytest.raises(DataValidationError):
                await session.close()

        run(scenario())

    def test_ledger_proven_cache_hits_bypass_the_writer_lock(self):
        """Regression: evaluate_worker/evaluate_all used to serialize every
        read behind the writer lock, so a reader queued behind a long apply
        even when the dependency ledger proved its cached estimate still
        valid.  Clean cached reads must complete while the lock is held;
        reads that need a recompute must still wait for it."""

        async def scenario():
            async with StreamSession(backend="dense") as session:
                records = [
                    (w, t, (w + t) % 2) for w in range(5) for t in range(12)
                ]
                for record in records:
                    await session.submit(*record)
                await session.flush()
                warm = await session.evaluate_all()
                async with session._lock:  # simulate a long apply in flight
                    # Ledger-proven reads are served despite the held lock.
                    estimate = await asyncio.wait_for(
                        session.evaluate_worker(0), timeout=1
                    )
                    assert estimate == warm[0]
                    served = await asyncio.wait_for(
                        session.evaluate_all(), timeout=1
                    )
                    assert served == warm
                    # A dirty worker needs the lock: the read must block
                    # until the writer releases it.
                    session.evaluator._invalidate(0)
                    blocked = asyncio.ensure_future(session.evaluate_worker(0))
                    with pytest.raises(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            asyncio.shield(blocked), timeout=0.1
                        )
                    assert not blocked.done()
                recomputed = await asyncio.wait_for(blocked, timeout=5)
                assert recomputed == warm[0]  # same data, same estimate

        run(scenario())

    def test_concurrent_producers_account_every_event(self):
        """Regression: submit() used to compute its sequence number before
        awaiting the queue, so two producers parked on a full queue lost
        increments — flush() then returned early and the counters lied."""
        per_producer = 120

        async def scenario():
            async with StreamSession(maxsize=4, max_batch=8) as session:

                async def producer(worker):
                    for index in range(per_producer):
                        await session.submit(worker, index % 30, index % 2)

                await asyncio.gather(producer(0), producer(1), producer(2))
                applied = await session.flush()
                assert session.submitted_events == 3 * per_producer
                assert applied == 3 * per_producer
                assert session.pending_events == 0
                assert session.evaluator.matrix.n_responses > 0
                records = session.applied_batches
                assert sum(r.stats.n_events for r in records) == 3 * per_producer

        run(scenario())

    def test_server_shutdown_completes_with_idle_client_connected(self):
        """Regression: Server.wait_closed() (Python >= 3.12) waits for every
        active handler, so a shutdown query used to hang while any other
        client sat idle in readline(); the server now force-closes idle
        connections on shutdown."""

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            async with StreamSession() as session:
                server = asyncio.get_running_loop().create_task(
                    serve_ndjson(
                        session,
                        port=0,
                        ready=lambda host, port: ready.set_result((host, port)),
                    )
                )
                host, port = await asyncio.wait_for(ready, timeout=5)
                # Idle client: connects and never sends anything.
                idle_reader, idle_writer = await asyncio.open_connection(host, port)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"query": "shutdown"}\n')
                await writer.drain()
                assert json.loads(await reader.readline()) == {"ok": True}
                await asyncio.wait_for(server, timeout=5)  # must not hang
                assert await idle_reader.read() == b""  # force-closed
                writer.close()
                idle_writer.close()

        run(scenario())


class TestInvalidationReduction:
    def test_batched_ingest_cuts_invalidation_passes_3x_on_10k_stream(self):
        """The locked acceptance bound: apply_responses on a 10k-event
        stream pays >= 3x fewer invalidation/rebuild passes than 10k
        singleton applies, with bit-identical estimates."""
        events = make_stream(10_000, 40, 400, seed=123)

        singleton = IncrementalEvaluator(3, 1, backend="dense")
        for event in events:
            singleton.add_response(*event)

        batched = IncrementalEvaluator(3, 1, backend="dense")
        for offset in range(0, len(events), 256):
            batched.apply_batch(events[offset : offset + 256])

        assert singleton.backend_rebuilds == 0
        assert batched.backend_rebuilds == 0
        singleton_passes = singleton._backend.invalidation_events
        batched_passes = batched._backend.invalidation_events
        assert batched_passes * 3 <= singleton_passes
        assert_bit_identical(batched.estimate_all(), batched.matrix)
        assert batched.matrix == singleton.matrix


class TestNdjsonServer:
    def test_event_query_protocol_round_trip(self):
        events = make_stream(300, 6, 25, seed=17)

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            async with StreamSession(confidence=0.9, max_batch=32) as session:
                server = asyncio.get_running_loop().create_task(
                    serve_ndjson(
                        session,
                        port=0,
                        ready=lambda host, port: ready.set_result((host, port)),
                    )
                )
                host, port = await asyncio.wait_for(ready, timeout=5)
                reader, writer = await asyncio.open_connection(host, port)

                async def ask(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await asyncio.wait_for(
                        reader.readline(), timeout=5
                    ))

                for worker, task, label in events:
                    writer.write(
                        (json.dumps([worker, task, label]) + "\n").encode()
                    )
                await writer.drain()
                flushed = await ask({"query": "flush"})
                stats = await ask({"query": "stats"})
                answer = await ask({"query": "evaluate_all"})
                one = await ask({"query": "worker", "worker": 0})
                bad = await ask({"query": "nope"})
                malformed = await ask("not-an-event")
                await ask({"query": "shutdown"})
                writer.close()
                await server
                return flushed, stats, answer, one, bad, malformed, session

        flushed, stats, answer, one, bad, malformed, session = run(scenario())
        assert flushed == {"applied": len(events)}
        assert stats["applied"] == len(events) and stats["pending"] == 0
        expected = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(
            session.evaluator.matrix
        )
        for ref in expected:
            if ref.n_tasks == 0:
                continue
            served = answer["estimates"][str(ref.worker)]
            assert served["mean"] == ref.interval.mean
            assert served["lower"] == ref.interval.lower
            assert served["upper"] == ref.interval.upper
            assert served["n_tasks"] == ref.n_tasks
        assert one["worker"] == 0
        assert "error" in bad
        assert "error" in malformed


class TestIterNdjson:
    def test_path_handle_closed_on_malformed_line(self, tmp_path, monkeypatch):
        """Regression: a malformed line used to abandon the open handle on
        the error path; the iterator now owns path-opened handles and
        closes them on every exit, including mid-stream parse failures."""
        import repro.serve.sources as sources_module
        from repro.serve.sources import iter_ndjson

        path = tmp_path / "events.ndjson"
        path.write_text("[0,0,1]\n{not json\n[1,0,1]\n")
        opened = []

        def recording_open(*args, **kwargs):
            handle = open(*args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr(sources_module, "_open_text", recording_open)

        async def scenario():
            records = []
            with pytest.raises(DataValidationError):
                async for record in iter_ndjson(str(path)):
                    records.append(record)
            return records

        records = run(scenario())
        assert records == [(0, 0, 1)]  # everything before the bad line
        assert len(opened) == 1 and opened[0].closed

    def test_path_handle_closed_when_consumer_abandons_early(
        self, tmp_path, monkeypatch
    ):
        import repro.serve.sources as sources_module
        from repro.serve.sources import iter_ndjson

        path = tmp_path / "events.ndjson"
        path.write_text("[0,0,1]\n[1,0,1]\n[2,0,1]\n")
        opened = []

        def recording_open(*args, **kwargs):
            handle = open(*args, **kwargs)
            opened.append(handle)
            return handle

        monkeypatch.setattr(sources_module, "_open_text", recording_open)

        async def scenario():
            async for record in iter_ndjson(str(path)):
                return record  # abandon after the first record

        assert run(scenario()) == (0, 0, 1)
        assert len(opened) == 1 and opened[0].closed

    def test_caller_provided_handle_stays_caller_owned(self, tmp_path):
        from repro.serve.sources import iter_ndjson

        path = tmp_path / "events.ndjson"
        path.write_text("[0,0,1]\n")
        with open(path, "r", encoding="utf-8") as handle:

            async def scenario():
                return [record async for record in iter_ndjson(handle)]

            assert run(scenario()) == [(0, 0, 1)]
            assert not handle.closed

    def test_final_record_without_trailing_newline_is_yielded(self, tmp_path):
        from repro.serve.sources import iter_ndjson

        path = tmp_path / "events.ndjson"
        path.write_text("[0,0,1]\n[1,0,0]")  # EOF lands mid-line

        async def scenario():
            return [record async for record in iter_ndjson(str(path))]

        assert run(scenario()) == [(0, 0, 1), (1, 0, 0)]

    def test_follow_buffers_partial_line_until_writer_finishes(self, tmp_path):
        """Regression: in follow mode a read can race the writer mid-append;
        the partial JSON must be buffered, not rejected as malformed."""
        from repro.serve.sources import iter_ndjson

        path = tmp_path / "events.ndjson"
        path.write_text("[0,0,1]\n[1,0")  # writer parked mid-record

        async def scenario():
            records = []

            async def complete_line():
                await asyncio.sleep(0.05)
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(",1]\n[2,0,0]\n")

            writer = asyncio.get_running_loop().create_task(complete_line())
            async for record in iter_ndjson(
                str(path), follow=True, poll_interval=0.01, idle_timeout=1.0
            ):
                records.append(record)
            await writer
            return records

        assert run(scenario()) == [(0, 0, 1), (1, 0, 1), (2, 0, 0)]


class TestServerShutdownSemantics:
    def test_pipelined_query_in_flight_at_shutdown_is_answered(self):
        """Queries already on the wire ahead of a shutdown are answered in
        order before the connection closes — shutdown never drops replies
        for work the server already accepted."""
        events = [(w, t, (w + t) % 2) for w in range(4) for t in range(6)]

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            async with StreamSession() as session:
                server = asyncio.get_running_loop().create_task(
                    serve_ndjson(
                        session,
                        port=0,
                        ready=lambda host, port: ready.set_result((host, port)),
                    )
                )
                host, port = await asyncio.wait_for(ready, timeout=5)
                reader, writer = await asyncio.open_connection(host, port)
                for event in events:
                    writer.write((json.dumps(list(event)) + "\n").encode())
                # Pipeline: flush + evaluate_all + shutdown in one write.
                writer.write(
                    b'{"query": "flush"}\n'
                    b'{"query": "evaluate_all"}\n'
                    b'{"query": "shutdown"}\n'
                )
                await writer.drain()
                flushed = json.loads(await reader.readline())
                answer = json.loads(await reader.readline())
                done = json.loads(await reader.readline())
                await asyncio.wait_for(server, timeout=5)
                writer.close()
                return flushed, answer, done

        flushed, answer, done = run(scenario())
        assert flushed == {"applied": len(events)}
        assert set(answer["estimates"]) == {"0", "1", "2", "3"}
        assert done == {"ok": True}

    def test_double_shutdown_is_safe(self):
        """A second shutdown — same connection or another client — must
        neither hang the server nor error; the server exits exactly once."""

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            async with StreamSession() as session:
                server = asyncio.get_running_loop().create_task(
                    serve_ndjson(
                        session,
                        port=0,
                        ready=lambda host, port: ready.set_result((host, port)),
                    )
                )
                host, port = await asyncio.wait_for(ready, timeout=5)
                reader, writer = await asyncio.open_connection(host, port)
                # Two shutdowns pipelined on one connection: the first is
                # acknowledged, the second lands after stop is set and gets
                # no reply (the handler loop has exited) — only EOF.
                writer.write(b'{"query": "shutdown"}\n{"query": "shutdown"}\n')
                await writer.drain()
                first = json.loads(await reader.readline())
                rest = await asyncio.wait_for(reader.read(), timeout=5)
                await asyncio.wait_for(server, timeout=5)
                writer.close()
                return first, rest

        first, rest = run(scenario())
        assert first == {"ok": True}
        assert rest == b""

    def test_client_disconnect_mid_response_keeps_server_alive(self):
        """A client that sends a query and vanishes before reading the
        reply must not take the server down: other clients keep working
        and a later shutdown still completes."""
        events = [(w, t, 1) for w in range(3) for t in range(5)]

        async def scenario():
            ready = asyncio.get_running_loop().create_future()
            async with StreamSession() as session:
                server = asyncio.get_running_loop().create_task(
                    serve_ndjson(
                        session,
                        port=0,
                        ready=lambda host, port: ready.set_result((host, port)),
                    )
                )
                host, port = await asyncio.wait_for(ready, timeout=5)
                # Rude client: submits events, asks a question, hangs up
                # without reading the answer.
                _, rude_writer = await asyncio.open_connection(host, port)
                for event in events:
                    rude_writer.write((json.dumps(list(event)) + "\n").encode())
                rude_writer.write(b'{"query": "evaluate_all"}\n')
                await rude_writer.drain()
                rude_writer.close()
                # A polite client still gets served afterwards.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"query": "flush"}\n{"query": "shutdown"}\n')
                await writer.drain()
                flushed = json.loads(await reader.readline())
                done = json.loads(await reader.readline())
                await asyncio.wait_for(server, timeout=5)
                writer.close()
                return flushed, done

        flushed, done = run(scenario())
        assert flushed == {"applied": len(events)}
        assert done == {"ok": True}


class TestParseEvent:
    def test_shapes(self):
        assert parse_event('{"worker": 2, "task": 5, "label": 1}') == (2, 5, 1)
        assert parse_event(b'[2, 5, 1]') == (2, 5, 1)
        assert parse_event({"worker": 2, "task": 5, "label": 1, "ts": 9}) == (2, 5, 1)
        assert parse_event("   \n") is None

    def test_malformed(self):
        with pytest.raises(DataValidationError):
            parse_event("{not json")
        with pytest.raises(DataValidationError):
            parse_event('{"worker": 1, "task": 2}')
        with pytest.raises(DataValidationError):
            parse_event("[1, 2]")
        with pytest.raises(DataValidationError):
            parse_event('"just-a-string"')
