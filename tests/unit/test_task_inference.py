"""Unit tests for task-label inference from worker-quality estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import evaluate_kary_workers, evaluate_workers
from repro.core.task_inference import (
    infer_binary_labels,
    infer_kary_labels,
    label_accuracy,
)
from repro.baselines.majority_vote import majority_vote_labels
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, DataValidationError
from repro.simulation.binary import BinaryWorkerPopulation
from repro.simulation.kary import KaryWorkerPopulation, PAPER_CONFUSION_MATRICES


class TestBinaryInference:
    def test_accurate_workers_outvote_inaccurate_majority(self):
        """One excellent worker with two poor workers: the weighted vote should
        follow the excellent worker where the poor ones disagree with it."""
        matrix = ResponseMatrix(3, 4)
        truth = [1, 0, 1, 0]
        for task, label in enumerate(truth):
            matrix.add_response(0, task, label)          # perfect worker
            matrix.add_response(1, task, 1 - label)      # terrible worker
            matrix.add_response(2, task, 1 - label)      # terrible worker
        matrix.set_gold_labels(truth)
        estimates = {0: 0.02, 1: 0.45, 2: 0.45}
        labels = infer_binary_labels(matrix, estimates)
        # The two bad workers together still outweigh... unless weights differ:
        # log(0.98/0.02) = 3.9 vs 2 * log(0.55/0.45) = 0.4, so worker 0 wins.
        assert labels == {task: label for task, label in enumerate(truth)}

    def test_equal_weights_reduce_to_majority(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.2, 0.2, 0.2]))
        matrix = population.generate(100, rng)
        weighted = infer_binary_labels(matrix, {0: 0.2, 1: 0.2, 2: 0.2})
        majority = majority_vote_labels(matrix)
        disagreements = sum(1 for task in weighted if weighted[task] != majority[task])
        assert disagreements == 0

    def test_accepts_worker_error_estimates(self, simulated_binary):
        matrix, _ = simulated_binary
        estimates = evaluate_workers(matrix, confidence=0.9)
        labels = infer_binary_labels(matrix, estimates)
        assert label_accuracy(matrix, labels) > 0.85

    def test_conservative_mode_uses_upper_bound(self, simulated_binary):
        matrix, _ = simulated_binary
        estimates = evaluate_workers(matrix, confidence=0.9)
        plain = infer_binary_labels(matrix, estimates, conservative=False)
        conservative = infer_binary_labels(matrix, estimates, conservative=True)
        assert set(plain) == set(conservative)

    def test_workers_without_estimates_are_skipped(self, simulated_binary):
        matrix, _ = simulated_binary
        labels = infer_binary_labels(matrix, {0: 0.1})
        # Only tasks answered by worker 0 can be labelled.
        assert set(labels).issubset(matrix.tasks_of(0))

    def test_prior_breaks_ties(self):
        matrix = ResponseMatrix(3, 1)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 0, 0)
        labels_positive = infer_binary_labels(matrix, {0: 0.2, 1: 0.2}, positive_prior=0.9)
        labels_negative = infer_binary_labels(matrix, {0: 0.2, 1: 0.2}, positive_prior=0.1)
        assert labels_positive[0] == 1
        assert labels_negative[0] == 0

    def test_validation(self, simulated_binary, simulated_kary):
        binary_matrix, _ = simulated_binary
        kary_matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            infer_binary_labels(kary_matrix, {0: 0.1})
        with pytest.raises(ConfigurationError):
            infer_binary_labels(binary_matrix, {0: 0.1}, positive_prior=0.0)


class TestKaryInference:
    def test_recovers_labels_with_true_confusions(self, rng):
        confusions = [PAPER_CONFUSION_MATRICES[3][i].copy() for i in range(3)]
        population = KaryWorkerPopulation(confusion_matrices=confusions)
        matrix = population.generate(300, rng)
        labels = infer_kary_labels(
            matrix, {worker: confusions[worker] for worker in range(3)}
        )
        assert label_accuracy(matrix, labels) > 0.85

    def test_biased_worker_is_corrected(self):
        """A worker who always answers 0 is uninformative; an accurate worker
        plus the bias model should still recover the truth."""
        always_zero = np.array([[0.99, 0.01], [0.99, 0.01]])
        accurate = np.array([[0.95, 0.05], [0.05, 0.95]])
        matrix = ResponseMatrix(2, 4, arity=2)
        truth = [0, 1, 1, 0]
        for task, label in enumerate(truth):
            matrix.add_response(0, task, 0)
            matrix.add_response(1, task, label)
        matrix.set_gold_labels(truth)
        labels = infer_kary_labels(matrix, {0: always_zero, 1: accurate})
        assert labels == dict(enumerate(truth))

    def test_accepts_kary_worker_estimates(self, simulated_kary):
        matrix, _ = simulated_kary
        estimates = evaluate_kary_workers(matrix, confidence=0.8)
        labels = infer_kary_labels(matrix, estimates)
        assert label_accuracy(matrix, labels) > 0.7

    def test_conservative_mode_runs(self, simulated_kary):
        matrix, _ = simulated_kary
        estimates = evaluate_kary_workers(matrix, confidence=0.8)
        labels = infer_kary_labels(matrix, estimates, conservative=True)
        assert labels

    def test_selectivity_prior_shifts_decisions(self):
        matrix = ResponseMatrix(1, 1, arity=2)
        matrix.add_response(0, 0, 1)
        noisy = np.array([[0.6, 0.4], [0.4, 0.6]])
        skewed = infer_kary_labels(matrix, {0: noisy}, selectivity=[0.95, 0.05])
        assert skewed[0] == 0

    def test_validation(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(DataValidationError):
            infer_kary_labels(matrix, {0: np.eye(2)})
        with pytest.raises(ConfigurationError):
            infer_kary_labels(matrix, {0: np.eye(3)}, selectivity=[1.0, 1.0])
        with pytest.raises(ConfigurationError):
            infer_kary_labels(matrix, {0: np.eye(3)}, selectivity=[0.0, 0.0, 0.0])


class TestLabelAccuracy:
    def test_counts_only_overlapping_tasks(self, small_binary_matrix):
        labels = {0: 0, 1: 1, 2: 1}
        assert label_accuracy(small_binary_matrix, labels) == pytest.approx(2 / 3)

    def test_requires_gold(self):
        matrix = ResponseMatrix(2, 2)
        with pytest.raises(DataValidationError):
            label_accuracy(matrix, {0: 1})

    def test_requires_overlap(self, small_binary_matrix):
        with pytest.raises(DataValidationError):
            label_accuracy(small_binary_matrix, {99: 1} if False else {})


class TestInferenceImprovesOnMajority:
    def test_weighted_vote_at_least_as_good_as_majority(self, rng):
        """With heterogeneous workers, quality-weighted voting should match or
        beat plain majority voting on average."""
        weighted_wins = 0
        ties = 0
        rounds = 10
        for _ in range(rounds):
            population = BinaryWorkerPopulation(
                error_rates=np.array([0.05, 0.1, 0.35, 0.4, 0.45])
            )
            matrix = population.generate(150, rng, densities=0.9)
            estimates = evaluate_workers(matrix, confidence=0.9)
            weighted = label_accuracy(matrix, infer_binary_labels(matrix, estimates))
            majority = label_accuracy(matrix, majority_vote_labels(matrix))
            if weighted > majority:
                weighted_wins += 1
            elif weighted == majority:
                ties += 1
        assert weighted_wins + ties >= rounds // 2
