"""Unit tests for the Theorem-1 delta-method engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.delta_method import DeltaMethodModel, confidence_interval_from_moments
from repro.exceptions import ConfigurationError
from repro.stats.normal import two_sided_z


class TestConfidenceIntervalFromMoments:
    def test_symmetric_around_mean(self):
        interval = confidence_interval_from_moments(0.4, 0.05, 0.9, clip_to_unit=False)
        assert interval.mean == pytest.approx(0.4)
        assert interval.upper - interval.mean == pytest.approx(interval.mean - interval.lower)

    def test_half_width_is_z_times_deviation(self):
        confidence = 0.8
        deviation = 0.07
        interval = confidence_interval_from_moments(0.5, deviation, confidence, clip_to_unit=False)
        assert interval.half_width == pytest.approx(two_sided_z(confidence) * deviation)

    def test_clipping_to_unit_interval(self):
        interval = confidence_interval_from_moments(0.02, 0.1, 0.95)
        assert interval.lower == 0.0
        assert interval.upper <= 1.0

    def test_zero_deviation_gives_point_interval(self):
        interval = confidence_interval_from_moments(0.3, 0.0, 0.9)
        assert interval.size == 0.0
        assert interval.contains(0.3)

    def test_higher_confidence_wider(self):
        narrow = confidence_interval_from_moments(0.3, 0.05, 0.5)
        wide = confidence_interval_from_moments(0.3, 0.05, 0.99)
        assert wide.size > narrow.size

    def test_rejects_negative_deviation(self):
        with pytest.raises(ConfigurationError):
            confidence_interval_from_moments(0.3, -0.1, 0.9)

    def test_rejects_nan_deviation(self):
        with pytest.raises(ConfigurationError):
            confidence_interval_from_moments(0.3, float("nan"), 0.9)


class TestDeltaMethodModel:
    def test_variance_is_quadratic_form(self):
        gradient = np.array([1.0, 2.0])
        covariance = np.array([[0.04, 0.01], [0.01, 0.09]])
        model = DeltaMethodModel(value=0.5, gradient=gradient, covariance=covariance)
        assert model.variance == pytest.approx(float(gradient @ covariance @ gradient))
        assert model.deviation == pytest.approx(np.sqrt(model.variance))

    def test_negative_roundoff_variance_floored(self):
        model = DeltaMethodModel(
            value=0.1,
            gradient=np.array([1.0, -1.0]),
            covariance=np.array([[1.0, 1.0 + 1e-15], [1.0 + 1e-15, 1.0]]),
        )
        assert model.variance >= 0.0

    def test_interval_uses_theorem1_formula(self):
        model = DeltaMethodModel(
            value=0.3, gradient=np.array([1.0]), covariance=np.array([[0.01]])
        )
        interval = model.interval(0.9, clip_to_unit=False)
        assert interval.half_width == pytest.approx(two_sided_z(0.9) * 0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            DeltaMethodModel(
                value=0.0, gradient=np.array([1.0, 2.0]), covariance=np.eye(3)
            )

    def test_non_finite_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            DeltaMethodModel(
                value=0.0, gradient=np.array([np.nan]), covariance=np.array([[1.0]])
            )
        with pytest.raises(ConfigurationError):
            DeltaMethodModel(
                value=0.0, gradient=np.array([1.0]), covariance=np.array([[np.inf]])
            )

    def test_linear_combination_value_and_variance(self):
        values = np.array([0.2, 0.4])
        weights = np.array([0.25, 0.75])
        covariance = np.array([[0.04, 0.0], [0.0, 0.01]])
        model = DeltaMethodModel.linear_combination(values, weights, covariance)
        assert model.value == pytest.approx(0.35)
        expected_variance = 0.25**2 * 0.04 + 0.75**2 * 0.01
        assert model.variance == pytest.approx(expected_variance)

    def test_linear_combination_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            DeltaMethodModel.linear_combination(
                np.array([0.1, 0.2]), np.array([1.0]), np.eye(2)
            )

    def test_monte_carlo_agreement_for_linear_function(self, rng):
        """For a genuinely linear function the delta method is exact; compare
        the predicted deviation with a Monte-Carlo estimate."""
        weights = np.array([0.3, 0.7])
        covariance = np.array([[0.02, 0.005], [0.005, 0.03]])
        means = np.array([0.2, 0.6])
        model = DeltaMethodModel.linear_combination(means, weights, covariance)
        samples = rng.multivariate_normal(means, covariance, size=40000) @ weights
        assert model.value == pytest.approx(float(samples.mean()), abs=0.01)
        assert model.deviation == pytest.approx(float(samples.std()), rel=0.05)
