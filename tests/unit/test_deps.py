"""Unit tests for the dependency ledger (:mod:`repro.core.deps`).

The differential suite proves the ledger's invalidation decisions equal the
legacy per-read observer's on fuzzed streams; this file pins the edge cases
of the ledger itself — empty footprints, id remapping after a spammer
compaction, growth across backend auto-flips, and the array round-trip
behind durable snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deps import (
    DependencyLedger,
    ObserverDependencyTracker,
    WorkerFootprint,
    encode_pair_ids,
)
from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.core.spammer_filter import filter_spammers
from repro.data.response_matrix import ResponseMatrix


def footprint(worker, partners=(), probes=()):
    return WorkerFootprint.from_evaluation(worker, partners, probes)


class TestLedgerBasics:
    def test_empty_ledger_invalidates_nothing(self):
        ledger = DependencyLedger()
        assert ledger.invalidated([(0, 1), (2, 3)]) == set()

    def test_touch_rule_invalidates_recorded_endpoints_only(self):
        ledger = DependencyLedger()
        ledger.record(1, footprint(1, partners=(2, 3)))
        ledger.record(5, footprint(5, partners=(2, 6)))
        # Pair (1, 9): worker 1 is a recorded endpoint -> touch rule fires;
        # worker 5 records neither endpoint in its support.
        assert ledger.invalidated([(1, 9)]) == {1}

    def test_probe_pairs_invalidate_third_party_readers(self):
        ledger = DependencyLedger()
        ledger.record(0, footprint(0, partners=(1, 2), probes=[(3, 4)]))
        # (3, 4) was only scanned during 0's pairing; neither endpoint is in
        # 0's support, so only the probe log catches the read.
        assert ledger.invalidated([(3, 4)]) == {0}
        assert ledger.invalidated([(4, 3)]) == {0}  # key order normalized

    def test_support_pairs_invalidate_lemma4_readers(self):
        ledger = DependencyLedger()
        ledger.record(0, footprint(0, partners=(1, 2, 3, 4)))
        # A changed pair between two formed partners is a Lemma-4 read.
        assert ledger.invalidated([(2, 3)]) == {0}
        # One endpoint outside the support set: no hit.
        assert ledger.invalidated([(2, 9)]) == set()

    def test_forget_and_record_replace(self):
        ledger = DependencyLedger()
        ledger.record(0, footprint(0, partners=(1, 2)))
        ledger.forget(0)
        assert 0 not in ledger
        assert ledger.invalidated([(1, 2)]) == set()


class TestZeroDependencyCaching:
    def test_isolated_worker_estimate_stays_cached(self):
        """A worker overlapping nobody records an empty footprint, and its
        cached (degenerate) estimate survives unrelated traffic."""
        ev = IncrementalEvaluator(5, 30, backend="dense")
        # Workers 0-3 share tasks 0-9; worker 4 answers only task 20.
        records = [
            (w, t, (w + t) % 2) for w in range(4) for t in range(10)
        ] + [(4, 20, 1)]
        ev.apply_batch(records)
        ev.estimate_all()
        isolated = ev.estimate(4)
        assert ev._ledger.footprint(4) is not None
        assert ev._ledger.footprint(4).pairs.size == 0
        # Traffic among the connected component leaves the isolated worker's
        # cache alone (no recorded dependency can match).
        baseline = ev.recompute_count
        ev.apply_batch([(0, 5, 1), (1, 5, 0)])
        assert 4 not in ev.dirty_workers
        assert ev.estimate(4) is isolated
        assert ev.recompute_count == baseline
        # ... but a response landing on the isolated worker's own task does
        # invalidate it (touch rule on the new pair).
        ev.apply_batch([(0, 20, 0)])
        assert 4 in ev.dirty_workers


class TestRemap:
    def test_filter_spammers_convention_drops_removed_pairs(self):
        ledger = DependencyLedger()
        # Old ids: 0 (kept), 1 (removed), 2 (kept), 3 (kept).
        ledger.record(0, footprint(0, partners=(2, 3), probes=[(1, 2), (2, 3)]))
        ledger.record(1, footprint(1, partners=(0, 2)))
        kept = (0, 2, 3)  # kept_workers[new_id] == old_id
        ledger.remap(kept)
        # The removed worker's footprint is gone with its old id.
        assert ledger.workers == {0}
        fp = ledger.footprint(0)
        # Probe pair (1, 2) referenced the removed worker and is dropped;
        # (2, 3) survives re-encoded under the new ids (2 -> 1, 3 -> 2).
        assert fp.pairs.tolist() == encode_pair_ids([(1, 2)]).tolist()
        assert fp.support.tolist() == [0, 1, 2]
        # Invalidation now speaks new ids: the surviving recorded pair hits,
        # a pair involving a recycled-but-unrelated id does not.
        assert ledger.invalidated([(1, 2)]) == {0}

    def test_remap_via_spammer_filter_result(self):
        """End-to-end: record footprints on the unfiltered matrix, compact
        with filter_spammers, remap, and check decisions against footprints
        recorded fresh on the filtered matrix."""
        rng = np.random.default_rng(42)
        matrix = ResponseMatrix(n_workers=8, n_tasks=40, arity=2)
        truth = rng.integers(0, 2, size=40)
        for worker in range(8):
            for task in range(40):
                if worker in (2, 5):  # spammers answer at random
                    label = int(rng.integers(0, 2))
                else:
                    flip = rng.random() < 0.15
                    label = int(truth[task] ^ flip)
                matrix.add_response(worker, task, label)
        result = filter_spammers(matrix)
        if not result.removed_workers:
            pytest.skip("filter removed nobody for this draw")
        estimator = MWorkerEstimator(backend="dense")
        from repro.core.agreement import AgreementStatistics
        from repro.data.dense_backend import resolve_backend

        stats = AgreementStatistics(
            matrix=matrix, backend=resolve_backend(matrix, "dense")
        )
        _, footprints = estimator.evaluate_worker_range(
            matrix, stats, list(range(matrix.n_workers)),
            collect_footprints=True,
        )
        ledger = DependencyLedger()
        for fp in footprints:
            ledger.record(fp.worker, fp)
        ledger.remap(result.kept_workers)
        assert ledger.workers == set(range(len(result.kept_workers)))
        for new_id, fp in ((w, ledger.footprint(w)) for w in ledger.workers):
            assert fp.worker == new_id
            assert all(
                0 <= member < len(result.kept_workers)
                for member in fp.support.tolist()
            )


class TestGrowthSurvival:
    def test_ledger_survives_extend_and_auto_flip(self):
        """Cached estimates (and their footprints) survive extend_tasks /
        extend_workers, including an ``auto`` backend kind flip."""
        ev = IncrementalEvaluator(6, 10, backend="auto")
        records = [(w, t, (w * t) % 2) for w in range(6) for t in range(10)]
        ev.apply_batch(records)
        ev.estimate_all()
        recorded = set(ev._ledger.workers)
        assert recorded == set(range(6))
        rebuilds_before = ev.backend_rebuilds
        # Grow the grid far enough that the cost model may flip the kind.
        ev.extend_tasks(300_000)
        ev.extend_workers(2)
        assert ev._ledger.workers == recorded, (
            "growth (rebuilds: "
            f"{ev.backend_rebuilds - rebuilds_before}) must not drop "
            "recorded footprints"
        )
        assert ev.dirty_workers == {6, 7}  # only the new, data-less workers
        baseline = ev.recompute_count
        ev.estimate_all()
        assert ev.recompute_count == baseline, (
            "no pre-growth estimate may recompute: added ids carry no "
            "responses, so no recorded statistic changed"
        )
        # New responses by a grown worker invalidate stale old caches (the
        # endpoint/touch rule catches pairs that did not exist at eval time).
        ev.apply_batch([(6, t, 1) for t in range(10)])
        assert 6 in ev.dirty_workers
        streamed = ev.estimate_all()
        fresh = IncrementalEvaluator(8, 300_010, backend="auto")
        fresh.apply_batch(
            records + [(6, t, 1) for t in range(10)]
        )
        assert fresh.estimate_all() == streamed


class TestRoundTrip:
    def test_export_import_preserves_decisions(self):
        ledger = DependencyLedger()
        ledger.record(0, footprint(0, partners=(1, 2), probes=[(3, 4)]))
        ledger.record(3, footprint(3, partners=(0, 5)))
        ledger.record(7, footprint(7))  # empty pairs and singleton support
        arrays = ledger.export_arrays()
        restored = DependencyLedger.from_arrays(
            {key: value.copy() for key, value in arrays.items()}
        )
        assert restored.workers == ledger.workers
        for changed in [[(3, 4)], [(1, 2)], [(0, 5)], [(0, 7)], [(8, 9)]]:
            assert restored.invalidated(changed) == ledger.invalidated(changed)

    def test_observer_tracker_endpoint_rule(self):
        """The legacy tracker applies the same endpoint rule as the ledger's
        touch flag: a changed pair invalidates a recorded endpoint even when
        that exact pair was never read at evaluation time (the growth case)."""
        tracker = ObserverDependencyTracker()
        tracker.begin(2)
        tracker.note_pair((2, 3))
        tracker.finish()
        # Pair (2, 9) was never recorded — worker 9 did not exist when 2 was
        # evaluated — but 2 is an endpoint, so it must be invalidated.
        assert 2 in tracker.readers_of((2, 9))
        assert tracker.readers_of((3, 9)) == set()
        tracker.forget(2)
        assert tracker.readers_of((2, 9)) == set()
