"""Unit tests for the core value types."""

from __future__ import annotations

import math

import pytest

from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    KaryWorkerEstimate,
    ResponseProbabilityEstimate,
    TripleEstimate,
    WorkerErrorEstimate,
)


def make_interval(mean=0.2, lower=0.1, upper=0.3, confidence=0.9, deviation=0.05):
    return ConfidenceInterval(
        mean=mean, lower=lower, upper=upper, confidence=confidence, deviation=deviation
    )


class TestConfidenceInterval:
    def test_size_is_width(self):
        interval = make_interval(lower=0.1, upper=0.35)
        assert math.isclose(interval.size, 0.25)

    def test_half_width(self):
        interval = make_interval(lower=0.1, upper=0.3)
        assert math.isclose(interval.half_width, 0.1)

    def test_contains_inside(self):
        assert make_interval().contains(0.15)

    def test_contains_boundaries(self):
        interval = make_interval(lower=0.1, upper=0.3)
        assert interval.contains(0.1)
        assert interval.contains(0.3)

    def test_contains_outside(self):
        assert not make_interval(lower=0.1, upper=0.3).contains(0.35)

    def test_rejects_confidence_zero(self):
        with pytest.raises(ValueError):
            make_interval(confidence=0.0)

    def test_rejects_confidence_one(self):
        with pytest.raises(ValueError):
            make_interval(confidence=1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            make_interval(lower=0.5, upper=0.2)

    def test_clipped_clamps_bounds(self):
        interval = ConfidenceInterval(
            mean=-0.1, lower=-0.4, upper=1.4, confidence=0.9, deviation=0.3
        )
        clipped = interval.clipped()
        assert clipped.lower == 0.0
        assert clipped.upper == 1.0
        assert clipped.mean == 0.0

    def test_clipped_preserves_confidence_and_deviation(self):
        interval = make_interval()
        clipped = interval.clipped()
        assert clipped.confidence == interval.confidence
        assert clipped.deviation == interval.deviation

    def test_clipped_custom_range(self):
        interval = make_interval(lower=0.1, upper=0.3)
        clipped = interval.clipped(lo=0.15, hi=0.25)
        assert clipped.lower == 0.15
        assert clipped.upper == 0.25

    def test_str_mentions_bounds(self):
        text = str(make_interval())
        assert "0.1" in text and "0.3" in text


class TestWorkerErrorEstimate:
    def test_error_rate_is_interval_mean(self):
        estimate = WorkerErrorEstimate(worker=1, interval=make_interval(), n_tasks=20)
        assert estimate.error_rate == 0.2

    def test_contains_truth(self):
        estimate = WorkerErrorEstimate(worker=1, interval=make_interval(), n_tasks=20)
        assert estimate.contains_truth(0.25)
        assert not estimate.contains_truth(0.5)

    def test_default_status_ok(self):
        estimate = WorkerErrorEstimate(worker=0, interval=make_interval(), n_tasks=5)
        assert estimate.status is EstimateStatus.OK

    def test_triples_default_empty(self):
        estimate = WorkerErrorEstimate(worker=0, interval=make_interval(), n_tasks=5)
        assert len(estimate.triples) == 0
        assert len(estimate.weights) == 0


class TestTripleEstimate:
    def test_fields_round_trip(self):
        triple = TripleEstimate(
            worker=0,
            partners=(1, 2),
            error_rate=0.12,
            deviation=0.03,
            derivatives={1: -0.5, 2: -0.4},
        )
        assert triple.partners == (1, 2)
        assert triple.derivatives[1] == -0.5
        assert triple.status is EstimateStatus.OK


def make_kary_estimate(arity=2, diag=0.8):
    entries = {}
    for a in range(arity):
        for b in range(arity):
            value = diag if a == b else (1.0 - diag) / (arity - 1)
            entries[(a, b)] = ResponseProbabilityEstimate(
                worker=0,
                true_label=a,
                response_label=b,
                interval=ConfidenceInterval(
                    mean=value,
                    lower=max(0.0, value - 0.1),
                    upper=min(1.0, value + 0.1),
                    confidence=0.9,
                    deviation=0.05,
                ),
            )
    return KaryWorkerEstimate(worker=0, arity=arity, entries=entries)


class TestKaryWorkerEstimate:
    def test_interval_lookup(self):
        estimate = make_kary_estimate()
        assert estimate.interval(0, 0).mean == 0.8
        assert estimate.interval(0, 1).mean == pytest.approx(0.2)

    def test_point_matrix_shape_and_rows(self):
        estimate = make_kary_estimate(arity=3, diag=0.7)
        matrix = estimate.point_matrix()
        assert len(matrix) == 3 and len(matrix[0]) == 3
        for row in matrix:
            assert sum(row) == pytest.approx(1.0)

    def test_accuracy_interval_is_diagonal(self):
        estimate = make_kary_estimate()
        assert estimate.accuracy_interval(1).mean == 0.8

    def test_mean_error_rate_uniform(self):
        estimate = make_kary_estimate(diag=0.8)
        assert estimate.mean_error_rate() == pytest.approx(0.2)

    def test_mean_error_rate_weighted(self):
        estimate = make_kary_estimate(diag=0.8)
        # All mass on label 0 -> error rate is 1 - P[0, 0].
        assert estimate.mean_error_rate([1.0, 0.0]) == pytest.approx(0.2)

    def test_mean_error_rate_normalizes_selectivity(self):
        estimate = make_kary_estimate(diag=0.9)
        assert estimate.mean_error_rate([2.0, 2.0]) == pytest.approx(0.1)

    def test_mean_error_rate_rejects_wrong_length(self):
        estimate = make_kary_estimate()
        with pytest.raises(ValueError):
            estimate.mean_error_rate([1.0, 0.0, 0.0])


class TestEstimateStatus:
    def test_members(self):
        assert {status.value for status in EstimateStatus} == {
            "ok",
            "clamped",
            "degenerate",
        }
