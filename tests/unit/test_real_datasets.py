"""Unit tests for the dataset stand-ins and the registry."""

from __future__ import annotations

import pytest

from repro.data import real_datasets
from repro.data.registry import DATASET_REGISTRY, dataset_names, load_dataset
from repro.exceptions import ConfigurationError


class TestImageComparison:
    def test_dimensions_match_paper(self):
        matrix = real_datasets.image_comparison(make_non_regular=False)
        assert matrix.n_workers == 19
        assert matrix.n_tasks == 48
        assert matrix.is_regular
        assert matrix.arity == 2

    def test_thinning_removes_about_twenty_percent(self):
        thinned = real_datasets.image_comparison(make_non_regular=True)
        assert 0.7 < thinned.density < 0.9
        assert not thinned.is_regular

    def test_deterministic_for_fixed_seed(self):
        assert real_datasets.image_comparison(seed=3) == real_datasets.image_comparison(seed=3)
        assert real_datasets.image_comparison(seed=3) != real_datasets.image_comparison(seed=4)

    def test_gold_labels_present(self):
        matrix = real_datasets.image_comparison()
        assert len(matrix.gold_labels) == 48


class TestSparseBinaryDatasets:
    def test_rte_shape(self):
        matrix = real_datasets.rte_entailment()
        assert matrix.n_workers == 164
        assert matrix.n_tasks == 800
        assert matrix.arity == 2
        assert matrix.density < 0.25

    def test_tem_shape(self):
        matrix = real_datasets.temporal_ordering()
        assert matrix.n_workers == 76
        assert matrix.n_tasks == 462
        assert matrix.density < 0.4

    def test_heterogeneous_worker_activity(self):
        matrix = real_datasets.rte_entailment()
        counts = [matrix.n_tasks_of(worker) for worker in range(matrix.n_workers)]
        assert max(counts) > 4 * min(counts)

    def test_contains_some_bad_workers(self):
        matrix = real_datasets.temporal_ordering()
        error_rates = [
            matrix.empirical_error_rate(worker)
            for worker in range(matrix.n_workers)
            if matrix.n_tasks_of(worker) >= 20
        ]
        assert max(error_rates) > 0.3
        assert min(error_rates) < 0.15


class TestKaryDatasets:
    def test_mooc_reduced_to_ternary(self):
        matrix = real_datasets.mooc_peer_grading()
        assert matrix.arity == 3
        labels = {label for _, _, label in matrix.iter_responses()}
        assert labels.issubset({0, 1, 2})

    def test_mooc_unreduced_is_six_ary(self):
        matrix = real_datasets.mooc_peer_grading(reduce_to_ternary=False)
        assert matrix.arity == 6

    def test_wsd_reduced_to_binary(self):
        matrix = real_datasets.word_sense_disambiguation()
        assert matrix.arity == 2

    def test_wsd_unreduced_has_rare_class(self):
        matrix = real_datasets.word_sense_disambiguation(reduce_to_binary=False)
        assert matrix.arity == 3
        gold_counts = {label: 0 for label in range(3)}
        for label in matrix.gold_labels.values():
            gold_counts[label] += 1
        assert gold_counts[2] < 0.1 * matrix.n_tasks

    def test_word_similarity_reduced_to_binary(self):
        matrix = real_datasets.word_similarity()
        assert matrix.arity == 2
        assert matrix.n_workers == 10

    def test_word_similarity_unreduced(self):
        matrix = real_datasets.word_similarity(reduce_to_binary=False)
        assert matrix.arity == 11

    def test_triple_overlap_supports_kary_thresholds(self):
        from repro.evaluation.experiments import KARY_DATASET_THRESHOLDS

        for name in ("mooc", "wsd", "ws"):
            matrix = load_dataset(name)
            threshold = KARY_DATASET_THRESHOLDS[name]
            workers = sorted(
                range(matrix.n_workers), key=lambda w: -matrix.n_tasks_of(w)
            )[:8]
            found = any(
                matrix.n_common_tasks(a, b, c) >= threshold
                for index_a, a in enumerate(workers)
                for index_b, b in enumerate(workers[index_a + 1:], index_a + 1)
                for c in workers[index_b + 1:]
            )
            assert found, f"no usable triple in dataset {name}"


class TestRegistry:
    def test_all_expected_datasets_registered(self):
        assert set(dataset_names()) == {"ic", "rte", "tem", "mooc", "wsd", "ws"}

    def test_load_by_name_case_insensitive(self):
        assert load_dataset("IC").n_workers == 19

    def test_load_with_seed_override(self):
        default = load_dataset("tem")
        other = load_dataset("tem", seed=99)
        assert default != other

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            load_dataset("imagenet")

    def test_specs_have_descriptions_and_figures(self):
        for spec in DATASET_REGISTRY.values():
            assert spec.description
            assert spec.used_in
            assert spec.arity in (2, 3)

    def test_registry_arity_matches_loaded_data(self):
        for name, spec in DATASET_REGISTRY.items():
            assert load_dataset(name).arity == spec.arity
