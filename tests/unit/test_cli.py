"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURE_FUNCTIONS, build_parser, main
from repro.data.loaders import save_response_matrix_csv
from repro.simulation.binary import BinaryWorkerPopulation

import numpy as np


@pytest.fixture
def csv_dataset(tmp_path, rng):
    population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.15]))
    matrix = population.generate(80, rng, densities=0.9)
    responses = tmp_path / "responses.csv"
    gold = tmp_path / "gold.csv"
    save_response_matrix_csv(matrix, responses, gold)
    return responses, gold


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate", "file.csv"])
        assert args.confidence == 0.9
        assert not args.remove_spammers
        assert args.shards == 1
        assert not args.no_batch_triples
        assert not args.no_batch_lemma4

    def test_figure_choices_cover_all_paper_figures(self):
        assert set(FIGURE_FUNCTIONS) == {
            "fig1", "fig2a", "fig2b", "fig2c", "fig3", "fig4", "fig5a", "fig5b", "fig5c",
        }
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])


class TestEvaluateCommand:
    def test_evaluate_csv(self, csv_dataset, capsys):
        responses, gold = csv_dataset
        exit_code = main(["evaluate", str(responses), "--gold", str(gold)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "worker" in output and "point" in output
        assert len(output.splitlines()) >= 6

    def test_evaluate_with_shards_flag(self, csv_dataset, capsys):
        # 4 workers with --shards 8 exercises the serial-fallback guard end
        # to end: same table, no pool, no hang.
        responses, gold = csv_dataset
        exit_code = main(
            ["evaluate", str(responses), "--gold", str(gold), "--shards", "8"]
        )
        assert exit_code == 0
        sharded_output = capsys.readouterr().out
        assert main(["evaluate", str(responses), "--gold", str(gold)]) == 0
        assert capsys.readouterr().out == sharded_output

    def test_evaluate_rejects_bad_shards(self, csv_dataset, capsys):
        # Spec validation happens at parse time now, so argparse aborts
        # with the usage-error exit code instead of main() returning it.
        responses, _ = csv_dataset
        for bad in ("0", "-2", "thread:0", "bogus"):
            with pytest.raises(SystemExit) as excinfo:
                main(["evaluate", str(responses), "--shards", bad])
            assert excinfo.value.code == 2, bad
            assert "--shards" in capsys.readouterr().err, bad

    def test_evaluate_accepts_shard_specs(self, csv_dataset, capsys):
        # 'auto' and explicit tier specs parse and print the same table as
        # the serial run (on this 4-worker matrix every spec resolves to a
        # small or serial execution, and results are identical on every
        # tier by the determinism contract).
        responses, gold = csv_dataset
        assert main(["evaluate", str(responses), "--gold", str(gold)]) == 0
        reference = capsys.readouterr().out
        for spec in ("auto", "thread:2", "process:2", "1"):
            assert (
                main(["evaluate", str(responses), "--gold", str(gold),
                      "--shards", spec])
                == 0
            )
            assert capsys.readouterr().out == reference, spec

    def test_evaluate_batch_knobs_pin_identical_paths(self, csv_dataset, capsys):
        # The batch knobs are throughput-only: pinning the slow paths from
        # the CLI must print the exact same table.
        responses, gold = csv_dataset
        assert main(["evaluate", str(responses), "--gold", str(gold)]) == 0
        default_output = capsys.readouterr().out
        for flags in (
            ["--no-batch-lemma4"],
            ["--no-batch-triples", "--no-batch-lemma4"],
        ):
            assert (
                main(["evaluate", str(responses), "--gold", str(gold), *flags])
                == 0
            )
            assert capsys.readouterr().out == default_output, flags

    def test_evaluate_backend_knob_pins_identical_tables(self, csv_dataset, capsys):
        # Every backend choice is throughput-only: pinning any of them from
        # the CLI must print the exact same table as the dict reference.
        responses, gold = csv_dataset
        assert (
            main(["evaluate", str(responses), "--gold", str(gold),
                  "--backend", "dict"])
            == 0
        )
        reference_output = capsys.readouterr().out
        for backend in ("dense", "sparse", "bitset", "auto"):
            assert (
                main(["evaluate", str(responses), "--gold", str(gold),
                      "--backend", backend])
                == 0
            )
            assert capsys.readouterr().out == reference_output, backend

    def test_evaluate_rejects_unknown_backend(self, csv_dataset):
        responses, _ = csv_dataset
        with pytest.raises(SystemExit):
            main(["evaluate", str(responses), "--backend", "gpu"])

    def test_evaluate_with_label_inference(self, csv_dataset, capsys):
        responses, gold = csv_dataset
        exit_code = main(
            ["evaluate", str(responses), "--gold", str(gold), "--infer-labels"]
        )
        assert exit_code == 0
        assert "accuracy against gold labels" in capsys.readouterr().out

    def test_evaluate_bundled_dataset(self, capsys):
        exit_code = main(["evaluate", "--dataset", "ic", "--confidence", "0.8"])
        assert exit_code == 0
        assert "worker" in capsys.readouterr().out

    def test_evaluate_kary_dataset(self, capsys):
        exit_code = main(["evaluate", "--dataset", "ws"])
        assert exit_code == 0
        # the WS stand-in is binary after reduction, so the binary table prints
        assert "worker" in capsys.readouterr().out

    def test_missing_input_is_an_error(self, capsys):
        exit_code = main(["evaluate"])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, capsys):
        exit_code = main(["evaluate", "/nonexistent/file.csv"])
        assert exit_code == 2


class TestIngestCommand:
    @pytest.fixture
    def ndjson_dataset(self, tmp_path, rng):
        """A shuffled NDJSON event stream paired with the equivalent CSV."""
        import json

        population = BinaryWorkerPopulation(
            error_rates=np.array([0.1, 0.2, 0.3, 0.15])
        )
        matrix = population.generate(60, rng, densities=0.9)
        records = list(matrix.iter_responses())
        rng.shuffle(records)
        events = tmp_path / "events.ndjson"
        with events.open("w") as handle:
            for worker, task, label in records:
                handle.write(
                    json.dumps({"worker": worker, "task": task, "label": label})
                    + "\n"
                )
        responses = tmp_path / "responses.csv"
        save_response_matrix_csv(matrix, responses)
        return events, responses

    def test_ingest_defaults(self):
        args = build_parser().parse_args(["ingest", "events.ndjson"])
        assert args.confidence == 0.9
        assert args.batch_size == 256
        assert not args.follow

    def test_ingest_matches_batch_evaluate_byte_for_byte(
        self, ndjson_dataset, capsys
    ):
        """The stream-smoke contract: the streamed table must be identical
        to a from-scratch batch evaluate over the same responses, even
        though the stream order is shuffled."""
        events, responses = ndjson_dataset
        assert main(["ingest", str(events)]) == 0
        streamed_output = capsys.readouterr().out
        assert main(["evaluate", str(responses), "--backend", "dense"]) == 0
        assert streamed_output == capsys.readouterr().out

    def test_ingest_stats_and_backend_knob(self, ndjson_dataset, capsys):
        events, _ = ndjson_dataset
        assert (
            main(["ingest", str(events), "--stats", "--backend", "bitset",
                  "--batch-size", "64"])
            == 0
        )
        output = capsys.readouterr().out
        assert "micro-batches" in output and "backend invalidations" in output

    def test_ingest_rejects_bad_sizes(self, ndjson_dataset, capsys):
        events, _ = ndjson_dataset
        assert main(["ingest", str(events), "--batch-size", "0"]) == 2
        assert "--batch-size" in capsys.readouterr().err

    def test_ingest_malformed_event_is_an_error(self, tmp_path, capsys):
        events = tmp_path / "bad.ndjson"
        events.write_text('{"worker": 0, "task": 0}\n')
        assert main(["ingest", str(events)]) == 2
        assert "error" in capsys.readouterr().err

    def test_ingest_missing_file_is_an_error(self, capsys):
        assert main(["ingest", "/nonexistent/events.ndjson"]) == 2


class TestOtherCommands:
    def test_datasets_plain(self, capsys):
        assert main(["datasets"]) == 0
        names = capsys.readouterr().out.split()
        assert "ic" in names and "mooc" in names

    def test_datasets_verbose(self, capsys):
        assert main(["datasets", "--verbose"]) == 0
        output = capsys.readouterr().out
        assert "arity" in output and "fig5c" in output

    def test_figure_command_runs_fig2b(self, capsys):
        assert main(["figure", "fig2b", "--repetitions", "2"]) == 0
        output = capsys.readouterr().out
        assert "fig2b" in output and "density" in output


class TestGauntletCommand:
    def test_restricted_grid_prints_table_and_flags_gaps(self, capsys):
        assert (
            main(["gauntlet", "--repetitions", "1", "--tasks", "40",
                  "--families", "independent", "--backends", "dense"])
            == 0
        )
        output = capsys.readouterr().out
        assert "coverage" in output and "independent" in output
        # The restricted run leaves the rest of the registry untested.
        assert "UNTESTED CELLS" in output

    def test_fail_on_gaps_exits_nonzero(self, capsys):
        assert (
            main(["gauntlet", "--repetitions", "1", "--tasks", "40",
                  "--families", "independent", "--backends", "dense",
                  "--fail-on-gaps"])
            == 1
        )
        assert "untested gauntlet cell" in capsys.readouterr().err

    def test_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "gauntlet.json"
        assert (
            main(["gauntlet", "--repetitions", "1", "--tasks", "40",
                  "--families", "independent", "--backends", "dict",
                  "--json", str(report_path)])
            == 0
        )
        report = json.loads(report_path.read_text())
        assert report["cells"]
        for cell in report["cells"]:
            assert {"family", "backend", "path", "coverage",
                    "calibration_error"} <= set(cell)

    def test_json_to_stdout(self, capsys):
        import json

        assert (
            main(["gauntlet", "--repetitions", "1", "--tasks", "40",
                  "--families", "independent", "--backends", "dict",
                  "--json", "-"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["cells"] and report["gaps"]

    def test_rejects_bad_repetitions(self, capsys):
        assert main(["gauntlet", "--repetitions", "0"]) == 2
        assert "--repetitions" in capsys.readouterr().err

    def test_rejects_bad_tasks(self, capsys):
        assert main(["gauntlet", "--tasks", "0"]) == 2
        assert "--tasks" in capsys.readouterr().err

    def test_unknown_family_is_an_error(self, capsys):
        assert main(["gauntlet", "--families", "no-such-family"]) == 2
        assert "no-such-family" in capsys.readouterr().err
