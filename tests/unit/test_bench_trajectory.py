"""Unit tests for the benchmark trajectory bookkeeping and trend gate.

``benchmarks/bench_scaling_agreement.py`` appends a dated entry to
``BENCH_agreement.json`` per run and warns (never fails) when the
fully-batched timing regresses beyond tolerance against the newest
comparable entry.  These tests load the script as a module and pin the
bookkeeping: legacy (pre-trajectory) files are adopted as the first entry,
the baseline match requires a comparable configuration, and the gate only
warns beyond tolerance.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_scaling_agreement.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_scaling", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def result_entry(seconds, workers=200, tasks=2000, density=0.6, date="2026-01-01"):
    return {
        "n_workers": workers,
        "n_tasks": tasks,
        "density": density,
        "path_seconds": {"batched_lemma4": seconds},
        "date": date,
    }


class TestLoadTrajectory:
    def test_missing_file_starts_empty(self, bench, tmp_path):
        assert bench.load_trajectory(str(tmp_path / "none.json"), {}) == []

    def test_legacy_flat_file_becomes_first_entry(self, bench, tmp_path):
        legacy = {
            "n_workers": 200,
            "n_tasks": 2000,
            "density": 0.6,
            "path_seconds": {"dense_batched": 0.62},
            "dense_seconds": 0.62,
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(legacy))
        trajectory = bench.load_trajectory(str(path), {})
        assert len(trajectory) == 1
        assert trajectory[0]["date"] == "pre-trajectory"
        assert trajectory[0]["path_seconds"]["dense_batched"] == 0.62

    def test_existing_trajectory_is_preserved(self, bench, tmp_path):
        entries = [result_entry(0.5), result_entry(0.45, date="2026-02-01")]
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"trajectory": entries}))
        assert bench.load_trajectory(str(path), {}) == entries


class TestTrendGate:
    def test_within_tolerance_is_quiet(self, bench, capsys):
        warning = bench.check_trend(
            [result_entry(0.50)], result_entry(0.55), tolerance=1.25
        )
        assert warning is None
        assert "perf trend ok" in capsys.readouterr().out

    def test_regression_beyond_tolerance_warns_only(self, bench, capsys):
        warning = bench.check_trend(
            [result_entry(0.50)], result_entry(0.80), tolerance=1.25
        )
        assert warning is not None and "PERF WARNING" in warning
        assert "PERF WARNING" in capsys.readouterr().err

    def test_newest_comparable_entry_is_the_baseline(self, bench):
        trajectory = [
            result_entry(0.10, date="2026-01-01"),
            result_entry(0.50, date="2026-03-01"),
            result_entry(0.30, workers=40, tasks=400, date="2026-04-01"),
        ]
        # 0.55s vs the newest comparable (0.50) is fine even though it is
        # 5.5x the oldest entry; the 40x400 entry is not comparable.
        assert bench.check_trend(trajectory, result_entry(0.55), 1.25) is None

    def test_no_comparable_baseline_is_quiet(self, bench, capsys):
        warning = bench.check_trend(
            [result_entry(0.5, workers=40, tasks=400)],
            result_entry(0.55),
            tolerance=1.25,
        )
        assert warning is None
        assert "no comparable baseline" in capsys.readouterr().out

    def test_legacy_headline_fallback(self, bench):
        entry = {
            "n_workers": 200,
            "n_tasks": 2000,
            "density": 0.6,
            "path_seconds": {"dense_batched": 0.62},
        }
        assert bench._headline_seconds(entry) == 0.62
