"""Unit tests for the statistics utilities (normal, intervals, covariance, linalg)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.exceptions import ConfigurationError, DegenerateEstimateError
from repro.stats import (
    bernoulli_variance,
    clopper_pearson_interval,
    eigendecompose,
    is_positive_semidefinite,
    matrix_inverse_sqrt,
    nearest_positive_semidefinite,
    normal_cdf,
    normal_pdf,
    normal_quantile,
    optimal_min_variance_weights,
    regularize_covariance,
    safe_inverse,
    sample_covariance,
    two_sided_z,
    wald_interval,
    wilson_interval,
)
from repro.stats.linalg import align_rows_to_diagonal


class TestNormal:
    def test_cdf_at_mean(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_cdf_matches_scipy(self):
        for x in (-2.0, -0.5, 0.3, 1.7):
            assert normal_cdf(x) == pytest.approx(scipy_stats.norm.cdf(x))

    def test_pdf_matches_scipy(self):
        for x in (-1.0, 0.0, 2.5):
            assert normal_pdf(x, mean=1.0, std=2.0) == pytest.approx(
                scipy_stats.norm.pdf(x, loc=1.0, scale=2.0)
            )

    def test_quantile_inverts_cdf(self):
        for p in (0.05, 0.3, 0.5, 0.9, 0.999):
            assert normal_cdf(normal_quantile(p)) == pytest.approx(p)

    def test_erfinv_fallback_matches_scipy_to_double_precision(self):
        # The scipy-free erfinv (used when the repro[sparse] extra is not
        # installed) must agree with scipy's to the last ulp or two across
        # the whole domain, tails included.
        from scipy.special import erfinv as scipy_erfinv

        from repro.stats.normal import _erfinv_fallback

        values = [1e-300, 1e-12, 1e-4, 0.1, 0.5, 0.9, 0.9999, 1 - 1e-12]
        for magnitude in values:
            for y in (magnitude, -magnitude):
                reference = float(scipy_erfinv(y))
                assert _erfinv_fallback(y) == pytest.approx(
                    reference, rel=5e-15, abs=5e-300
                ), y
        assert _erfinv_fallback(0.0) == 0.0
        assert _erfinv_fallback(1.0) == float("inf")
        assert _erfinv_fallback(-1.0) == float("-inf")
        assert _erfinv_fallback(float("nan")) != _erfinv_fallback(float("nan"))
        assert _erfinv_fallback(1.5) != _erfinv_fallback(1.5)  # NaN out of range

    def test_quantile_with_location_scale(self):
        assert normal_quantile(0.5, mean=3.0, std=2.0) == pytest.approx(3.0)

    def test_two_sided_z_common_values(self):
        assert two_sided_z(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert two_sided_z(0.90) == pytest.approx(1.644854, abs=1e-4)
        assert two_sided_z(0.5) == pytest.approx(0.674490, abs=1e-4)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_two_sided_z_validation(self, bad):
        with pytest.raises(ConfigurationError):
            two_sided_z(bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0])
    def test_quantile_validation(self, bad):
        with pytest.raises(ConfigurationError):
            normal_quantile(bad)

    def test_negative_std_rejected(self):
        with pytest.raises(ConfigurationError):
            normal_cdf(0.0, std=0.0)
        with pytest.raises(ConfigurationError):
            normal_pdf(0.0, std=-1.0)


class TestBinomialIntervals:
    def test_wald_centre(self):
        interval = wald_interval(20, 100, 0.9)
        assert interval.mean == pytest.approx(0.2)
        assert interval.lower < 0.2 < interval.upper

    def test_wald_degenerate_counts(self):
        assert wald_interval(0, 50, 0.9).lower == 0.0
        assert wald_interval(50, 50, 0.9).upper == 1.0

    def test_wilson_is_within_unit_interval(self):
        interval = wilson_interval(1, 3, 0.95)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_wilson_tighter_than_clopper_pearson(self):
        wilson = wilson_interval(5, 40, 0.9)
        exact = clopper_pearson_interval(5, 40, 0.9)
        assert wilson.size <= exact.size + 1e-9

    def test_clopper_pearson_contains_proportion(self):
        interval = clopper_pearson_interval(7, 20, 0.95)
        assert interval.lower <= 7 / 20 <= interval.upper

    def test_clopper_pearson_boundary_cases(self):
        assert clopper_pearson_interval(0, 10, 0.9).lower == 0.0
        assert clopper_pearson_interval(10, 10, 0.9).upper == 1.0

    def test_higher_confidence_wider(self):
        narrow = wilson_interval(10, 50, 0.5)
        wide = wilson_interval(10, 50, 0.99)
        assert wide.size > narrow.size

    @pytest.mark.parametrize("successes,trials,confidence", [(-1, 10, 0.9), (11, 10, 0.9), (5, 0, 0.9), (5, 10, 1.0)])
    def test_validation(self, successes, trials, confidence):
        with pytest.raises(ConfigurationError):
            wald_interval(successes, trials, confidence)


class TestCovarianceUtilities:
    def test_bernoulli_variance(self):
        assert bernoulli_variance(0.5, 100) == pytest.approx(0.0025)
        assert bernoulli_variance(0.0, 10) == 0.0

    def test_bernoulli_variance_validation(self):
        with pytest.raises(ConfigurationError):
            bernoulli_variance(0.5, 0)

    def test_sample_covariance_matches_numpy(self, rng):
        samples = rng.normal(size=(50, 3))
        assert np.allclose(sample_covariance(samples), np.cov(samples, rowvar=False))

    def test_sample_covariance_validation(self):
        with pytest.raises(ConfigurationError):
            sample_covariance(np.zeros(5))
        with pytest.raises(ConfigurationError):
            sample_covariance(np.zeros((1, 3)))

    def test_is_positive_semidefinite(self):
        assert is_positive_semidefinite(np.eye(3))
        assert not is_positive_semidefinite(np.array([[1.0, 2.0], [2.0, 1.0]]))
        assert not is_positive_semidefinite(np.array([[1.0, 0.5], [0.4, 1.0]]))
        assert not is_positive_semidefinite(np.ones((2, 3)))

    def test_nearest_psd_projects(self):
        indefinite = np.array([[1.0, 0.9], [0.9, -0.5]])
        repaired = nearest_positive_semidefinite(indefinite)
        assert is_positive_semidefinite(repaired)

    def test_nearest_psd_keeps_psd_input(self):
        matrix = np.array([[2.0, 0.5], [0.5, 1.0]])
        assert np.allclose(nearest_positive_semidefinite(matrix), matrix)

    def test_regularize_covariance_invertible(self):
        singular = np.ones((3, 3))
        regularized = regularize_covariance(singular)
        assert is_positive_semidefinite(regularized)
        np.linalg.inv(regularized)  # must not raise


class TestLinalg:
    def test_safe_inverse_regular(self):
        matrix = np.array([[2.0, 0.0], [0.0, 4.0]])
        assert np.allclose(safe_inverse(matrix) @ matrix, np.eye(2))

    def test_safe_inverse_singular_falls_back_to_ridge(self):
        singular = np.array([[1.0, 1.0], [1.0, 1.0]])
        inverse = safe_inverse(singular, ridge=1e-6)
        assert np.all(np.isfinite(inverse))

    def test_safe_inverse_rejects_non_square(self):
        with pytest.raises(DegenerateEstimateError):
            safe_inverse(np.ones((2, 3)))

    def test_eigendecompose_real_psd(self):
        matrix = np.array([[2.0, 1.0], [1.0, 2.0]])
        eigenvalues, eigenvectors = eigendecompose(matrix)
        reconstructed = eigenvectors @ np.diag(eigenvalues) @ np.linalg.inv(eigenvectors)
        assert np.allclose(reconstructed, matrix)
        assert np.all(eigenvalues >= 0)

    def test_matrix_inverse_sqrt(self):
        matrix = np.array([[4.0, 0.0], [0.0, 9.0]])
        inverse_sqrt = matrix_inverse_sqrt(matrix)
        assert np.allclose(inverse_sqrt, np.diag([0.5, 1.0 / 3.0]))

    def test_align_rows_to_diagonal_fixes_permutation(self):
        base = np.array([[0.8, 0.1, 0.1], [0.2, 0.7, 0.1], [0.05, 0.15, 0.8]])
        shuffled = base[[2, 0, 1]]
        aligned = align_rows_to_diagonal(shuffled)
        assert np.allclose(aligned, base)

    def test_align_rows_identity(self):
        base = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert np.allclose(align_rows_to_diagonal(base), base)

    def test_align_rows_rejects_non_square(self):
        with pytest.raises(DegenerateEstimateError):
            align_rows_to_diagonal(np.ones((2, 3)))

    def test_optimal_weights_sum_to_one(self):
        covariance = np.diag([1.0, 2.0, 4.0])
        weights = optimal_min_variance_weights(covariance)
        assert weights.sum() == pytest.approx(1.0)

    def test_optimal_weights_prefer_low_variance(self):
        covariance = np.diag([1.0, 100.0])
        weights = optimal_min_variance_weights(covariance)
        assert weights[0] > weights[1]

    def test_optimal_weights_diagonal_closed_form(self):
        variances = np.array([1.0, 2.0, 4.0])
        weights = optimal_min_variance_weights(np.diag(variances))
        expected = (1.0 / variances) / np.sum(1.0 / variances)
        assert np.allclose(weights, expected)

    def test_optimal_weights_single_triple(self):
        assert optimal_min_variance_weights(np.array([[0.3]])) == pytest.approx([1.0])

    def test_optimal_weights_rejects_non_square(self):
        with pytest.raises(DegenerateEstimateError):
            optimal_min_variance_weights(np.ones((2, 3)))

    def test_optimal_weights_beats_uniform(self):
        covariance = np.array([[1.0, 0.2, 0.1], [0.2, 3.0, 0.3], [0.1, 0.3, 5.0]])
        weights = optimal_min_variance_weights(covariance)
        uniform = np.full(3, 1.0 / 3.0)
        assert weights @ covariance @ weights <= uniform @ covariance @ uniform + 1e-12
