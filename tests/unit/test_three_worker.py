"""Unit tests for the 3-worker binary estimator (Algorithm A1, Lemmas 1-3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.agreement import compute_agreement_statistics
from repro.core.three_worker import (
    MIN_AGREEMENT_MARGIN,
    agreement_covariance_matrix,
    clamp_agreement,
    error_rate_from_agreements,
    error_rate_gradient,
    evaluate_three_workers,
    evaluate_worker_in_triple,
    smoothed_variance_rate,
)
from repro.exceptions import (
    ConfigurationError,
    DegenerateEstimateError,
    InsufficientDataError,
)
from repro.simulation.binary import BinaryWorkerPopulation
from repro.types import EstimateStatus


def expected_agreement(p_i: float, p_j: float) -> float:
    """q_ij = p_i p_j + (1 - p_i)(1 - p_j)."""
    return p_i * p_j + (1.0 - p_i) * (1.0 - p_j)


class TestErrorRateFormula:
    def test_recovers_error_rates_from_exact_agreements(self):
        """Eq. (1) inverts the agreement model exactly on noiseless inputs."""
        p = (0.1, 0.2, 0.3)
        q_12 = expected_agreement(p[0], p[1])
        q_13 = expected_agreement(p[0], p[2])
        q_23 = expected_agreement(p[1], p[2])
        assert error_rate_from_agreements(q_12, q_13, q_23) == pytest.approx(p[0])
        assert error_rate_from_agreements(q_12, q_23, q_13) == pytest.approx(p[1])
        assert error_rate_from_agreements(q_13, q_23, q_12) == pytest.approx(p[2])

    def test_perfect_agreement_gives_zero_error(self):
        assert error_rate_from_agreements(1.0, 1.0, 1.0) == pytest.approx(0.0)

    def test_rejects_agreement_at_half(self):
        with pytest.raises(DegenerateEstimateError):
            error_rate_from_agreements(0.5, 0.9, 0.9)

    def test_monotone_decreasing_in_own_agreements(self):
        base = error_rate_from_agreements(0.8, 0.8, 0.9)
        higher = error_rate_from_agreements(0.85, 0.8, 0.9)
        assert higher < base


class TestGradient:
    @pytest.mark.parametrize(
        "q",
        [(0.8, 0.75, 0.9), (0.9, 0.9, 0.95), (0.6, 0.7, 0.65), (0.82, 0.64, 0.71)],
    )
    def test_gradient_matches_numerical_derivative(self, q):
        gradient = error_rate_gradient(*q)
        epsilon = 1e-6
        for index in range(3):
            bumped_up = list(q)
            bumped_down = list(q)
            bumped_up[index] += epsilon
            bumped_down[index] -= epsilon
            numeric = (
                error_rate_from_agreements(*bumped_up)
                - error_rate_from_agreements(*bumped_down)
            ) / (2 * epsilon)
            assert gradient[index] == pytest.approx(numeric, rel=1e-4)

    def test_signs_match_lemma2(self):
        gradient = error_rate_gradient(0.8, 0.85, 0.9)
        assert gradient[0] < 0
        assert gradient[1] < 0
        assert gradient[2] > 0

    def test_rejects_degenerate_rates(self):
        with pytest.raises(DegenerateEstimateError):
            error_rate_gradient(0.5, 0.8, 0.8)


class TestClampingAndSmoothing:
    def test_clamp_below_half(self):
        value, clamped = clamp_agreement(0.42)
        assert clamped
        assert value == pytest.approx(0.5 + MIN_AGREEMENT_MARGIN)

    def test_clamp_above_one(self):
        value, clamped = clamp_agreement(1.2)
        assert clamped
        assert value == 1.0

    def test_no_clamp_in_valid_range(self):
        value, clamped = clamp_agreement(0.8)
        assert not clamped and value == 0.8

    def test_smoothed_variance_rate_pulls_away_from_boundary(self):
        assert 0.0 < smoothed_variance_rate(1.0, 4) < 1.0
        assert smoothed_variance_rate(1.0, 4) == pytest.approx(5 / 6)

    def test_smoothed_variance_rate_negligible_for_large_counts(self):
        assert smoothed_variance_rate(0.8, 10000) == pytest.approx(0.8, abs=1e-3)

    def test_smoothed_variance_rate_validation(self):
        with pytest.raises(InsufficientDataError):
            smoothed_variance_rate(0.8, 0)


class TestCovarianceMatrix:
    def _inputs(self, n=100, c_triple=None):
        p = {0: 0.1, 1: 0.2, 2: 0.3}
        q = {
            (0, 1): expected_agreement(0.1, 0.2),
            (0, 2): expected_agreement(0.1, 0.3),
            (1, 2): expected_agreement(0.2, 0.3),
        }
        c_pair = {(0, 1): n, (0, 2): n, (1, 2): n}
        return q, c_pair, c_triple if c_triple is not None else n, p

    def test_diagonal_is_binomial_variance(self):
        q, c_pair, c_triple, p = self._inputs(n=200)
        covariance = agreement_covariance_matrix(q, c_pair, c_triple, p, (0, 1, 2))
        q_smoothed = smoothed_variance_rate(q[(0, 1)], 200)
        assert covariance[0, 0] == pytest.approx(q_smoothed * (1 - q_smoothed) / 200)

    def test_off_diagonal_matches_lemma1_regular(self):
        n = 100
        q, c_pair, c_triple, p = self._inputs(n=n)
        covariance = agreement_covariance_matrix(q, c_pair, c_triple, p, (0, 1, 2))
        # Cov(Q_01, Q_02): shared worker 0, other pair (1, 2).
        expected = p[0] * (1 - p[0]) * (2 * q[(1, 2)] - 1) / n
        assert covariance[0, 1] == pytest.approx(expected)
        # Cov(Q_01, Q_12): shared worker 1, other pair (0, 2).
        expected = p[1] * (1 - p[1]) * (2 * q[(0, 2)] - 1) / n
        assert covariance[0, 2] == pytest.approx(expected)

    def test_lemma3_scales_with_triple_overlap(self):
        q, c_pair, _, p = self._inputs(n=100)
        full = agreement_covariance_matrix(q, c_pair, 100, p, (0, 1, 2))
        half = agreement_covariance_matrix(q, c_pair, 50, p, (0, 1, 2))
        assert half[0, 1] == pytest.approx(full[0, 1] / 2)
        # Diagonal terms do not depend on the triple overlap.
        assert half[0, 0] == pytest.approx(full[0, 0])

    def test_matrix_is_symmetric(self):
        q, c_pair, c_triple, p = self._inputs()
        covariance = agreement_covariance_matrix(q, c_pair, c_triple, p, (0, 1, 2))
        assert np.allclose(covariance, covariance.T)

    def test_zero_common_tasks_rejected(self):
        q, c_pair, c_triple, p = self._inputs()
        c_pair[(0, 1)] = 0
        with pytest.raises(InsufficientDataError):
            agreement_covariance_matrix(q, c_pair, c_triple, p, (0, 1, 2))


class TestEvaluateThreeWorkers:
    def test_returns_one_estimate_per_worker(self, simulated_binary):
        matrix, _ = simulated_binary
        results = evaluate_three_workers(matrix, confidence=0.9, workers=(0, 1, 2))
        assert [r.worker for r in results] == [0, 1, 2]
        for result in results:
            assert 0.0 <= result.interval.lower <= result.interval.upper <= 1.0

    def test_defaults_to_all_three_workers(self, small_binary_matrix):
        results = evaluate_three_workers(small_binary_matrix, confidence=0.8)
        assert len(results) == 3

    def test_interval_width_shrinks_with_more_tasks(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        small = population.generate(60, rng)
        large = population.generate(2000, rng)
        size_small = np.mean(
            [r.interval.size for r in evaluate_three_workers(small, 0.9)]
        )
        size_large = np.mean(
            [r.interval.size for r in evaluate_three_workers(large, 0.9)]
        )
        assert size_large < size_small

    def test_point_estimates_close_to_truth_on_large_data(self, rng):
        rates = np.array([0.1, 0.2, 0.3])
        population = BinaryWorkerPopulation(error_rates=rates)
        matrix = population.generate(5000, rng)
        results = evaluate_three_workers(matrix, confidence=0.9)
        for result in results:
            assert result.interval.mean == pytest.approx(rates[result.worker], abs=0.04)

    def test_non_binary_rejected(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            evaluate_three_workers(matrix, confidence=0.9)

    def test_requires_explicit_triple_for_larger_matrices(self, non_regular_matrix):
        with pytest.raises(ConfigurationError):
            evaluate_three_workers(non_regular_matrix, confidence=0.9)

    def test_duplicate_workers_rejected(self, non_regular_matrix):
        with pytest.raises(ConfigurationError):
            evaluate_three_workers(non_regular_matrix, confidence=0.9, workers=(0, 1, 1))

    def test_clamped_status_for_antagonistic_worker(self, rng):
        """A worker answering at random drives agreements to ~1/2 and the
        estimate is flagged as clamped rather than raising."""
        population = BinaryWorkerPopulation(error_rates=np.array([0.05, 0.05, 0.499]))
        matrix = population.generate(60, rng)
        results = evaluate_three_workers(matrix, confidence=0.9)
        assert all(isinstance(r.status, EstimateStatus) for r in results)


class TestEvaluateWorkerInTriple:
    def test_returns_derivatives_for_both_partners(self, simulated_binary):
        matrix, _ = simulated_binary
        stats = compute_agreement_statistics(matrix)
        result = evaluate_worker_in_triple(stats, 0, (1, 2))
        assert set(result.derivatives if hasattr(result, "derivatives") else result.derivative_by_partner) == {1, 2}
        assert result.deviation > 0.0
        assert math.isfinite(result.error_rate)

    def test_identical_workers_rejected(self, simulated_binary):
        matrix, _ = simulated_binary
        stats = compute_agreement_statistics(matrix)
        with pytest.raises(ConfigurationError):
            evaluate_worker_in_triple(stats, 0, (0, 1))

    def test_no_overlap_raises(self):
        from repro.data.response_matrix import ResponseMatrix

        matrix = ResponseMatrix(3, 6)
        # Workers 0 and 1 never overlap.
        for task in range(3):
            matrix.add_response(0, task, 0)
            matrix.add_response(2, task, 0)
        for task in range(3, 6):
            matrix.add_response(1, task, 0)
            matrix.add_response(2, task, 0)
        stats = compute_agreement_statistics(matrix)
        with pytest.raises(InsufficientDataError):
            evaluate_worker_in_triple(stats, 2, (0, 1))
