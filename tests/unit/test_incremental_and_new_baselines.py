"""Unit tests for the incremental evaluator, KOS message passing, and the
bootstrap comparison baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bootstrap import BootstrapEstimator, bootstrap_intervals
from repro.baselines.karger_oh_shah import karger_oh_shah
from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator, evaluate_worker
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.binary import BinaryWorkerPopulation
from repro.types import EstimateStatus


class TestIncrementalEvaluator:
    def _streamed(self, rng, n_workers=5, n_tasks=120):
        population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
        matrix = population.generate(n_tasks, rng, densities=0.85)
        return matrix, population.error_rates

    def test_matches_batch_estimator_after_full_stream(self, rng):
        matrix, _ = self._streamed(rng)
        incremental = IncrementalEvaluator(
            n_workers=matrix.n_workers, n_tasks=matrix.n_tasks, confidence=0.9
        )
        incremental.add_responses(matrix.iter_responses())
        streamed = incremental.estimate(2)
        batch = evaluate_worker(matrix, 2, confidence=0.9)
        assert streamed.interval.mean == pytest.approx(batch.interval.mean)
        assert streamed.interval.size == pytest.approx(batch.interval.size)

    def test_cache_survives_unrelated_updates(self, rng):
        matrix, _ = self._streamed(rng)
        incremental = IncrementalEvaluator(matrix.n_workers, matrix.n_tasks + 1)
        incremental.add_responses(matrix.iter_responses())
        incremental.estimate_all()
        assert not incremental.dirty_workers
        # A response on a brand-new task touched by nobody else only dirties
        # the responding worker.
        incremental.add_response(0, matrix.n_tasks, 1)
        assert incremental.dirty_workers == {0}

    def test_update_invalidates_co_attempting_workers(self, rng):
        matrix, _ = self._streamed(rng)
        incremental = IncrementalEvaluator(matrix.n_workers, matrix.n_tasks)
        incremental.add_responses(matrix.iter_responses())
        incremental.estimate_all()
        task = 0
        co_attempting = set(matrix.workers_of(task))
        previous = matrix.response(1, task)
        flipped = 1 - previous if previous is not None else 1
        incremental.add_response(1, task, flipped)
        # The update changes the agreement statistics of worker 1 with every
        # co-attempter, so at least those workers must be invalidated.  Third
        # parties whose triples used a changed partner rate q_{1,u} are
        # legitimately invalidated too (that under-invalidation was a bug).
        assert co_attempting | {1} <= incremental.dirty_workers

    def test_reaffirmed_response_keeps_caches(self, rng):
        """Re-adding an identical response changes no statistic, so every
        cached estimate (including the responder's) stays valid."""
        matrix, _ = self._streamed(rng)
        incremental = IncrementalEvaluator(matrix.n_workers, matrix.n_tasks)
        incremental.add_responses(matrix.iter_responses())
        incremental.estimate_all()
        task = 0
        previous = matrix.response(1, task)
        assert previous is not None
        incremental.add_response(1, task, previous)
        assert incremental.dirty_workers == set()

    @pytest.mark.parametrize("backend", ["dense", "dict"])
    def test_streamed_estimates_match_fresh_batch_run(self, rng, backend):
        """Regression: streaming updates after an estimate_all() must not
        leave stale intervals anywhere.  An earlier version invalidated only
        the updating worker and its co-attempters, so a third worker whose
        Lemma-4 covariance used the changed partners' mutual rate q_{w,u}
        kept a stale cached interval."""
        matrix, _ = self._streamed(rng, n_workers=8, n_tasks=60)
        records = list(matrix.iter_responses())
        warm = records[: len(records) // 2]
        stream = records[len(records) // 2 :]
        incremental = IncrementalEvaluator(
            matrix.n_workers, matrix.n_tasks, confidence=0.9, backend=backend
        )
        incremental.add_responses(warm)
        incremental.estimate_all()  # populate the cache mid-stream
        for step, (worker, task, label) in enumerate(stream):
            incremental.add_response(worker, task, label)
            if step % 17 == 0:
                incremental.estimate_all()  # interleave queries with the stream
        streamed = incremental.estimate_all()
        batch = MWorkerEstimator(confidence=0.9, backend=backend).evaluate_all(
            incremental.matrix
        )
        assert set(streamed) == set(range(matrix.n_workers))
        for worker, estimate in streamed.items():
            expected = batch[worker]
            assert estimate.interval.mean == expected.interval.mean
            assert estimate.interval.lower == expected.interval.lower
            assert estimate.interval.upper == expected.interval.upper
            assert estimate.interval.deviation == expected.interval.deviation
            assert estimate.weights == expected.weights
            assert estimate.status is expected.status

    def test_streaming_fuzz_random_interleavings_match_fresh_batch(self):
        """Seeded fuzz: arbitrary interleavings of ingestion and queries.

        For each seed, a random non-regular stream — including label
        overwrites and re-affirmed duplicates — is ingested with queries
        fired at random points.  Every served interval must equal a fresh
        batch run over the data accumulated so far, on both statistics
        backends (the dense half exercises the delta-updated backend and
        the batched triple stage; the dict half the lazy caches).
        """
        n_seeds = 50
        for seed in range(n_seeds):
            backend = "dense" if seed % 2 else "dict"
            fuzz = np.random.default_rng(seed)
            n_workers = int(fuzz.integers(4, 8))
            n_tasks = int(fuzz.integers(12, 30))
            incremental = IncrementalEvaluator(
                n_workers, n_tasks, confidence=0.9, backend=backend
            )
            n_events = int(fuzz.integers(30, 90))
            query_points = set(
                int(q) for q in fuzz.integers(5, n_events, size=3)
            ) | {n_events - 1}
            for step in range(n_events):
                worker = int(fuzz.integers(0, n_workers))
                task = int(fuzz.integers(0, n_tasks))
                label = int(fuzz.integers(0, 2))
                incremental.add_response(worker, task, label)
                if step in query_points:
                    streamed = incremental.estimate_all()
                    batch = MWorkerEstimator(
                        confidence=0.9, backend=backend
                    ).evaluate_all(incremental.matrix)
                    for estimate in batch:
                        if estimate.n_tasks == 0:
                            assert estimate.worker not in streamed, seed
                            continue
                        served = streamed[estimate.worker]
                        assert served.interval.mean == estimate.interval.mean, seed
                        assert served.interval.lower == estimate.interval.lower, seed
                        assert served.interval.upper == estimate.interval.upper, seed
                        assert (
                            served.interval.deviation == estimate.interval.deviation
                        ), seed
                        assert served.weights == estimate.weights, seed
                        assert served.status is estimate.status, seed

    def test_estimates_improve_as_data_arrives(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        early_matrix = population.generate(30, rng)
        late_matrix = population.generate(300, rng)
        incremental = IncrementalEvaluator(3, 330, confidence=0.9)
        incremental.add_responses(early_matrix.iter_responses())
        early_size = incremental.estimate(0).interval.size
        incremental.add_responses(
            (worker, task + 30, label) for worker, task, label in late_matrix.iter_responses()
        )
        late_size = incremental.estimate(0).interval.size
        assert late_size < early_size

    def test_extend_tasks(self, rng):
        incremental = IncrementalEvaluator(3, 5)
        incremental.extend_tasks(5)
        incremental.add_response(0, 9, 1)
        assert incremental.matrix.n_tasks == 10
        with pytest.raises(ConfigurationError):
            incremental.extend_tasks(0)
        with pytest.raises(ConfigurationError):
            incremental.extend_workers(0)

    @pytest.mark.parametrize("backend", ["dense", "bitset"])
    def test_unseen_ids_take_delta_path_without_rebuild(self, rng, backend):
        """Regression: a response on a task/worker unseen at construction
        used to force a full backend rebuild through ``extend_tasks``; it
        must now take the delta growth path (zero rebuilds) and still serve
        estimates equal to a fresh batch run over the grown matrix."""
        matrix, _ = self._streamed(rng, n_workers=5, n_tasks=40)
        incremental = IncrementalEvaluator(5, 40, confidence=0.9, backend=backend)
        incremental.add_responses(matrix.iter_responses())
        warmed = incremental.estimate_all()  # build every derived cache
        assert warmed and incremental.backend_rebuilds == 0

        # Unseen task id: routed through the extend_tasks delta path.
        incremental.add_response(0, 55, 1)
        assert incremental.matrix.n_tasks == 56
        assert incremental.backend_rebuilds == 0
        # The new task has no co-attempters: only worker 0 goes dirty, every
        # other cached estimate survives the growth.
        assert incremental.dirty_workers == {0}

        # Unseen worker id (batch form): extend_workers delta path.
        incremental.apply_batch([(7, 3, 1), (7, 5, 0), (7, 55, 1)])
        assert incremental.matrix.n_workers == 8
        assert incremental.backend_rebuilds == 0

        served = incremental.estimate_all()
        reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(
            incremental.matrix
        )
        for ref in reference:
            if ref.n_tasks == 0:
                continue
            estimate = served[ref.worker]
            assert estimate.interval.mean == ref.interval.mean
            assert estimate.interval.lower == ref.interval.lower
            assert estimate.interval.upper == ref.interval.upper
            assert estimate.interval.deviation == ref.interval.deviation
            assert estimate.weights == ref.weights
            assert estimate.status is ref.status

    def test_rebuild_counted_only_on_auto_backend_flip(self, rng, monkeypatch):
        """Under ``backend="auto"`` growth rebuilds only when the cost model
        flips the backend kind — and the counter records exactly that."""
        import repro.data.dense_backend as dense_backend_module
        import repro.data.sparse_backend as sparse_backend_module

        monkeypatch.setattr(dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 240)
        monkeypatch.setattr(dense_backend_module, "AUTO_BITSET_CELL_LIMIT", 240)
        # The empty matrix is maximally sparse; fence the sparse tier off so
        # the grown grid lands on dict (cells beyond every scipy-free tier).
        monkeypatch.setattr(sparse_backend_module, "_SCIPY_OVERRIDE", False)
        incremental = IncrementalEvaluator(6, 30, backend="auto")
        assert incremental._backend is not None  # dense below the limit
        incremental.extend_tasks(5)  # 210 cells: still dense -> delta path
        assert incremental.backend_rebuilds == 0
        assert incremental._backend is not None
        incremental.extend_tasks(30)  # 390 cells: flips to dict -> rebuild
        assert incremental.backend_rebuilds == 1
        assert incremental._backend is None

    def test_extend_tasks_across_auto_backend_threshold(self, rng, monkeypatch):
        """``extend_tasks`` under ``backend="auto"`` re-resolves the cost
        model for the grown matrix, which can flip dense -> dict mid-stream
        once the cell count crosses every vectorized tier (the dense cell
        limit *and* the bitset ceiling — both shrunk here; the sparse tier
        is fenced off by keeping the grid below ``AUTO_SPARSE_MIN_CELLS``).
        The flip must be invisible in results: cached estimates stay valid
        (empty tasks change no statistic), newly computed ones come from
        the dict path, and everything served equals a fresh batch run over
        the accumulated data — the regression this test locks down.
        The dense -> sparse and dense -> bitset flips are locked the same
        way in ``tests/unit/test_sparse_backend.py``."""
        import repro.data.dense_backend as dense_backend_module

        n_workers, initial_tasks, extra_tasks = 6, 30, 30
        monkeypatch.setattr(
            dense_backend_module, "AUTO_DENSE_CELL_LIMIT", 240
        )
        monkeypatch.setattr(
            dense_backend_module, "AUTO_BITSET_CELL_LIMIT", 240
        )
        incremental = IncrementalEvaluator(
            n_workers, initial_tasks, confidence=0.9, backend="auto"
        )
        assert incremental._backend is not None  # below threshold: dense

        population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
        early = population.generate(initial_tasks, rng, densities=0.75)
        incremental.add_responses(early.iter_responses())
        incremental.estimate_all()  # warm the cache on the dense backend

        incremental.extend_tasks(extra_tasks)
        assert incremental._backend is None  # above threshold: dict

        # Cached estimates survive the flip: the new tasks carry no
        # responses, so no statistic any cached computation read changed.
        assert not incremental.dirty_workers

        late = population.generate(extra_tasks, rng, densities=0.75)
        incremental.add_responses(
            (worker, task + initial_tasks, label)
            for worker, task, label in late.iter_responses()
        )
        served = incremental.estimate_all()

        reference = MWorkerEstimator(confidence=0.9, backend="auto").evaluate_all(
            incremental.matrix
        )
        for ref in reference:
            if ref.n_tasks == 0:
                continue
            estimate = served[ref.worker]
            assert estimate.interval.mean == ref.interval.mean
            assert estimate.interval.lower == ref.interval.lower
            assert estimate.interval.upper == ref.interval.upper
            assert estimate.interval.deviation == ref.interval.deviation
            assert estimate.weights == ref.weights
            assert estimate.status is ref.status

    def test_estimate_requires_data(self):
        incremental = IncrementalEvaluator(3, 5)
        with pytest.raises(InsufficientDataError):
            incremental.estimate(0)

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            IncrementalEvaluator(2, 10)

    def test_n_responses_counter(self, rng):
        incremental = IncrementalEvaluator(3, 10)
        added = incremental.add_responses([(0, 0, 1), (1, 0, 1), (2, 0, 0)])
        assert added == 3
        assert incremental.n_responses == 3


class TestKargerOhShah:
    def test_recovers_labels_on_easy_instance(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.15, 0.2, 0.1, 0.25]))
        matrix = population.generate(200, rng, densities=0.8)
        result = karger_oh_shah(matrix)
        correct = sum(
            1
            for task, gold in matrix.gold_labels.items()
            if task in result.labels and result.labels[task] == gold
        )
        assert correct / len(result.labels) > 0.9

    def test_worker_scores_rank_quality(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.05, 0.05, 0.05, 0.45]))
        matrix = population.generate(300, rng)
        result = karger_oh_shah(matrix)
        good_scores = [result.worker_scores[w] for w in (0, 1, 2)]
        assert min(good_scores) > result.worker_scores[3]

    def test_all_workers_receive_scores(self, rng):
        population = BinaryWorkerPopulation.from_paper_palette(5, rng)
        matrix = population.generate(60, rng, densities=0.6)
        result = karger_oh_shah(matrix)
        assert set(result.worker_scores) == set(range(5))

    def test_deterministic_without_rng(self, simulated_binary):
        matrix, _ = simulated_binary
        first = karger_oh_shah(matrix)
        second = karger_oh_shah(matrix)
        assert first.labels == second.labels

    def test_validation(self, simulated_kary):
        kary_matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            karger_oh_shah(kary_matrix)
        empty = ResponseMatrix(3, 3)
        with pytest.raises(InsufficientDataError):
            karger_oh_shah(empty)
        matrix = ResponseMatrix(3, 3)
        matrix.add_response(0, 0, 1)
        with pytest.raises(ConfigurationError):
            karger_oh_shah(matrix, n_iterations=0)


class TestBootstrapBaseline:
    def test_intervals_cover_truth_reasonably(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.2]))
        hits = total = 0
        for seed in range(6):
            matrix = population.generate(100, rng)
            estimates = bootstrap_intervals(matrix, confidence=0.8, n_resamples=60, seed=seed)
            for worker, estimate in estimates.items():
                if estimate.status is EstimateStatus.DEGENERATE:
                    continue
                total += 1
                hits += estimate.interval.contains(population.error_rates[worker])
        assert total > 0
        assert hits / total > 0.6

    def test_interval_contains_point_estimate(self, simulated_binary):
        matrix, _ = simulated_binary
        estimates = bootstrap_intervals(matrix, confidence=0.9, n_resamples=40)
        for estimate in estimates.values():
            assert estimate.interval.lower <= estimate.interval.mean <= estimate.interval.upper

    def test_single_worker_evaluation(self, simulated_binary):
        matrix, _ = simulated_binary
        estimator = BootstrapEstimator(confidence=0.8, n_resamples=30)
        estimate = estimator.evaluate_worker(matrix, 1)
        assert estimate.worker == 1

    def test_deterministic_for_fixed_seed(self, simulated_binary):
        matrix, _ = simulated_binary
        first = bootstrap_intervals(matrix, 0.8, n_resamples=30, seed=7)
        second = bootstrap_intervals(matrix, 0.8, n_resamples=30, seed=7)
        assert first[0].interval.lower == second[0].interval.lower

    def test_validation(self, simulated_binary, simulated_kary):
        binary_matrix, _ = simulated_binary
        kary_matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            BootstrapEstimator(confidence=1.5)
        with pytest.raises(ConfigurationError):
            BootstrapEstimator(n_resamples=2)
        with pytest.raises(ConfigurationError):
            BootstrapEstimator(n_resamples=30).evaluate_all(kary_matrix)
        tiny = ResponseMatrix(2, 5)
        tiny.add_response(0, 0, 1)
        tiny.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            BootstrapEstimator(n_resamples=30).evaluate_all(tiny)
