"""Edge cases of the batched per-triple stage and the sharded worker loop.

The batched stage (:func:`repro.core.three_worker.evaluate_triples_batched`)
must not merely match the scalar loop on healthy data — it must *fail* the
same way on degenerate data: triples without overlap are skipped exactly
where the scalar loop raises ``InsufficientDataError``, zero-margin clamping
raises the identical ``DegenerateEstimateError``, and boundary agreement
patterns (all-agree, all-disagree, near-singular systems) produce
bit-identical estimates, gradients and deviations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.m_worker import MWorkerEstimator
from repro.core.three_worker import (
    evaluate_triples_batched,
    evaluate_worker_in_triple,
)
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import (
    ConfigurationError,
    DegenerateEstimateError,
    InsufficientDataError,
)
from repro.types import EstimateStatus


def dense_stats(matrix: ResponseMatrix) -> AgreementStatistics:
    return AgreementStatistics.precompute(matrix, backend="dense")


def assert_results_match(scalar, batched) -> None:
    assert batched.worker == scalar.worker
    assert batched.partners == scalar.partners
    assert batched.error_rate == scalar.error_rate
    assert batched.deviation == scalar.deviation
    assert batched.derivative_by_partner == scalar.derivative_by_partner
    assert batched.derivative_partners == scalar.derivative_partners
    assert batched.status is scalar.status


def batch_vs_scalar(matrix: ResponseMatrix, worker: int, pairs, **kwargs):
    """Run both paths over ``pairs``; per triple the outcomes must agree.

    Returns the batched result list; asserts that every None slot is exactly
    a slot where the scalar call raises InsufficientDataError, and that
    every populated slot is bit-identical to the scalar result.
    """
    stats = dense_stats(matrix)
    batched = evaluate_triples_batched(stats, worker, pairs, **kwargs)
    for pair, result in zip(pairs, batched):
        try:
            scalar = evaluate_worker_in_triple(stats, worker, pair, **kwargs)
        except InsufficientDataError:
            assert result is None, f"scalar skips {pair}, batched did not"
            continue
        assert result is not None, f"batched dropped {pair}, scalar evaluated it"
        assert_results_match(scalar, result)
    return batched


class TestPartnerDegeneracies:
    def test_worker_with_no_valid_partner_yields_all_none(self):
        # Worker 0 answers only task 0; nobody else touches task 0.
        matrix = ResponseMatrix(n_workers=5, n_tasks=10, arity=2)
        matrix.add_response(0, 0, 1)
        for worker in range(1, 5):
            for task in range(1, 10):
                matrix.add_response(worker, task, (worker + task) % 2)
        batched = batch_vs_scalar(matrix, 0, [(1, 2), (3, 4)])
        assert batched == [None, None]

    def test_worker_with_one_valid_partner_keeps_only_that_triple(self):
        # Worker 0 overlaps workers 1 and 2 but not 3 and 4.
        matrix = ResponseMatrix(n_workers=5, n_tasks=12, arity=2)
        for task in range(6):
            matrix.add_response(0, task, task % 2)
            matrix.add_response(1, task, task % 2)
            matrix.add_response(2, task, (task + task // 3) % 2)
        for task in range(6, 12):
            matrix.add_response(3, task, task % 2)
            matrix.add_response(4, task, (task + 1) % 2)
        batched = batch_vs_scalar(matrix, 0, [(1, 2), (3, 4)])
        assert batched[0] is not None
        assert batched[1] is None

    def test_partners_without_mutual_overlap_are_skipped(self):
        # Worker 0 overlaps both partners, but the partners never co-answer.
        matrix = ResponseMatrix(n_workers=3, n_tasks=10, arity=2)
        for task in range(10):
            matrix.add_response(0, task, task % 2)
        for task in range(5):
            matrix.add_response(1, task, task % 2)
        for task in range(5, 10):
            matrix.add_response(2, task, task % 2)
        batched = batch_vs_scalar(matrix, 0, [(1, 2)])
        assert batched == [None]

    def test_estimator_degrades_identically_across_paths(self):
        # At the estimator level, a worker with no usable triple must come
        # out DEGENERATE on every path.
        matrix = ResponseMatrix(n_workers=5, n_tasks=10, arity=2)
        matrix.add_response(0, 0, 1)
        for worker in range(1, 5):
            for task in range(1, 10):
                matrix.add_response(worker, task, (worker * task) % 2)
        results = {}
        for name, config in {
            "dict": {"backend": "dict"},
            "scalar": {"backend": "dense", "batch_triples": False},
            "batched": {"backend": "dense", "batch_triples": True},
        }.items():
            results[name] = MWorkerEstimator(confidence=0.9, **config).evaluate_worker(
                matrix, 0
            )
        assert results["dict"].status is EstimateStatus.DEGENERATE
        for name in ("scalar", "batched"):
            assert results[name].status is EstimateStatus.DEGENERATE
            assert results[name].interval == results["dict"].interval


class TestBoundaryAgreementColumns:
    def _perfect_agreement_matrix(self) -> ResponseMatrix:
        matrix = ResponseMatrix(n_workers=4, n_tasks=20, arity=2)
        for worker in range(4):
            for task in range(20):
                matrix.add_response(worker, task, task % 2)
        return matrix

    def test_all_agree_columns_bit_identical(self):
        # Agreement rates of exactly 1: Eq. (1) ratio is 1, estimate 0, and
        # the variance runs entirely on the Laplace-smoothed rate.
        matrix = self._perfect_agreement_matrix()
        batched = batch_vs_scalar(matrix, 0, [(1, 2), (1, 3), (2, 3)])
        assert all(result is not None for result in batched)
        for result in batched:
            assert result.error_rate == 0.0
            assert result.status is EstimateStatus.OK

    def test_all_disagree_columns_clamp_identically(self):
        # Worker 3 disagrees with everyone on every task: q = 0 rates are
        # clamped to 1/2 + margin and the estimate is flagged CLAMPED.
        matrix = ResponseMatrix(n_workers=4, n_tasks=20, arity=2)
        for worker in range(3):
            for task in range(20):
                matrix.add_response(worker, task, task % 2)
        for task in range(20):
            matrix.add_response(3, task, (task + 1) % 2)
        batched = batch_vs_scalar(matrix, 3, [(0, 1), (0, 2), (1, 2)])
        for result in batched:
            assert result is not None
            assert result.status is EstimateStatus.CLAMPED

    def test_near_singular_system_bit_identical(self):
        # Two partners answering identically make the 3x3 covariance nearly
        # singular; both paths must still produce the same floats.
        matrix = ResponseMatrix(n_workers=4, n_tasks=30, arity=2)
        rng = np.random.default_rng(99)
        labels = rng.integers(0, 2, size=30)
        for task in range(30):
            matrix.add_response(0, task, int(labels[task]))
            matrix.add_response(1, task, int(labels[task]))
            matrix.add_response(2, task, int(labels[task]) if task % 7 else 1 - int(labels[task]))
            matrix.add_response(3, task, int(labels[task]) if task % 3 else 1 - int(labels[task]))
        for worker in range(4):
            pairs = [
                tuple(p for p in range(4) if p != worker)[:2],
            ]
            batch_vs_scalar(matrix, worker, pairs)

    def test_zero_margin_degenerate_raises_identically(self):
        # With clamp_margin=0 a 50% agreement rate sits exactly on the
        # Eq. (1) singularity; scalar and batched must raise the same error.
        matrix = ResponseMatrix(n_workers=3, n_tasks=20, arity=2)
        for task in range(20):
            matrix.add_response(0, task, task % 2)
            matrix.add_response(1, task, task % 2)
            matrix.add_response(2, task, (task // 2) % 2)  # 50% agreement
        stats = dense_stats(matrix)
        with pytest.raises(DegenerateEstimateError) as scalar_error:
            evaluate_worker_in_triple(stats, 0, (1, 2), clamp_margin=0.0)
        with pytest.raises(DegenerateEstimateError) as batched_error:
            evaluate_triples_batched(stats, 0, [(1, 2)], clamp_margin=0.0)
        assert str(batched_error.value) == str(scalar_error.value)


class TestBatchedApiValidation:
    def test_requires_dense_backend(self, small_binary_matrix):
        stats = compute_agreement_statistics(small_binary_matrix, backend="dict")
        with pytest.raises(ConfigurationError):
            evaluate_triples_batched(stats, 0, [(1, 2)])

    def test_requires_distinct_workers(self, small_binary_matrix):
        stats = dense_stats(small_binary_matrix)
        with pytest.raises(ConfigurationError):
            evaluate_triples_batched(stats, 0, [(0, 2)])
        with pytest.raises(ConfigurationError):
            evaluate_triples_batched(stats, 0, [(1, 1)])

    def test_empty_batch(self, small_binary_matrix):
        stats = dense_stats(small_binary_matrix)
        assert evaluate_triples_batched(stats, 0, []) == []

    def test_randomized_batches_match_scalar(self):
        # Property-style sweep: random non-regular matrices, every worker,
        # the full greedy pairing, scalar vs batched per triple.
        for seed in range(8):
            rng = np.random.default_rng(seed)
            m = int(rng.integers(4, 10))
            n = int(rng.integers(15, 60))
            matrix = ResponseMatrix(n_workers=m, n_tasks=n, arity=2)
            densities = rng.uniform(0.2, 0.95, size=m)
            for worker in range(m):
                for task in np.nonzero(rng.random(n) < densities[worker])[0]:
                    matrix.add_response(worker, int(task), int(rng.integers(0, 2)))
            for worker in range(m):
                others = [w for w in range(m) if w != worker]
                rng.shuffle(others)
                pairs = [
                    (others[i], others[i + 1]) for i in range(0, len(others) - 1, 2)
                ]
                if pairs:
                    batch_vs_scalar(matrix, worker, pairs)


class TestCrossWorkerChunking:
    def test_chunked_stage_matches_unchunked(self, monkeypatch):
        # Force tiny chunks so the cross-worker batch spans many stage
        # invocations; results must stay bit-identical to one big batch.
        import repro.core.m_worker as m_worker_module

        matrix = ResponseMatrix(n_workers=9, n_tasks=40, arity=2)
        rng = np.random.default_rng(5)
        for worker in range(9):
            for task in np.nonzero(rng.random(40) < 0.7)[0]:
                matrix.add_response(worker, int(task), int(rng.integers(0, 2)))
        estimator = MWorkerEstimator(confidence=0.9, backend="dense")
        reference = estimator.evaluate_all(matrix)
        monkeypatch.setattr(m_worker_module, "_BATCH_STAGE_CHUNK_TRIPLES", 3)
        chunked = estimator.evaluate_all(matrix)
        assert len(chunked) == len(reference)
        for a, b in zip(reference, chunked):
            assert a.interval == b.interval
            assert a.weights == b.weights
            assert a.status is b.status


class TestShardGuards:
    def test_fewer_workers_than_shards_falls_back_to_serial(self):
        # Must neither hang nor drop workers: 4 workers, 16 shards.
        matrix = ResponseMatrix(n_workers=4, n_tasks=15, arity=2)
        for worker in range(4):
            for task in range(15):
                matrix.add_response(worker, task, (task + (worker == 3)) % 2)
        estimator = MWorkerEstimator(confidence=0.9, backend="dense", shards=16)
        stats = compute_agreement_statistics(matrix, backend="dense")
        assert not estimator._shardable(matrix, stats)
        results = estimator.evaluate_all(matrix)
        assert [estimate.worker for estimate in results] == [0, 1, 2, 3]
        serial = MWorkerEstimator(confidence=0.9, backend="dense").evaluate_all(matrix)
        for a, b in zip(serial, results):
            assert a.interval == b.interval
            assert a.weights == b.weights

    def test_dict_backend_never_shards(self, simulated_binary):
        matrix, _ = simulated_binary
        estimator = MWorkerEstimator(backend="dict", shards=4)
        stats = compute_agreement_statistics(matrix, backend="dict")
        assert not estimator._shardable(matrix, stats)
        assert len(estimator.evaluate_all(matrix)) == matrix.n_workers

    def test_custom_rng_never_shards(self, simulated_binary):
        matrix, _ = simulated_binary
        estimator = MWorkerEstimator(
            backend="dense",
            shards=2,
            pairing_strategy="random",
            rng=np.random.default_rng(0),
        )
        stats = compute_agreement_statistics(matrix, backend="dense")
        assert not estimator._shardable(matrix, stats)

    def test_shards_validation(self):
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(shards=0)
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(shards=-3)
