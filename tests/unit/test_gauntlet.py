"""Unit tests for the adversarial scenario gauntlet.

Covers both halves: the scenario families in
:mod:`repro.simulation.gauntlet` (each violation demonstrably induced) and
the lazy report grid in :mod:`repro.evaluation.gauntlet` (cells computed
only on first render, gap detection exhaustive against the capability
matrix, collusion measurably degrading coverage against the independent
control).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agreement import (
    BACKEND_CAPABILITIES,
    supported_estimator_paths,
)
from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.gauntlet import (
    GauntletResults,
    detect_gaps,
    expected_cells,
    format_gauntlet_report,
)
from repro.exceptions import ConfigurationError
from repro.serve.session import replay_stream
from repro.simulation.gauntlet import (
    GAUNTLET_FAMILIES,
    CollusionScenario,
    DriftScenario,
    GauntletFamily,
    ImbalanceScenario,
    RevisionStormScenario,
    high_arity_scenario,
    independent_baseline_scenario,
)

#: Small grids keep the suite fast without starving the estimators.
SMALL = {name: {"n_tasks": 50} for name in GAUNTLET_FAMILIES}


def _empirical_error(matrix, tasks):
    """Fraction of wrong answers over ``tasks`` across all workers."""
    wrong = total = 0
    for worker, task, label in matrix.iter_responses():
        if task in tasks:
            total += 1
            wrong += label != matrix.gold_label(task)
    return wrong / total


class TestDriftScenario:
    def test_drift_schedule_honored(self, rng):
        scenario = DriftScenario(
            name="drift-test", n_workers=7, n_tasks=400, arity=2, drift=0.4
        )
        matrix, truth = scenario.sample(rng)
        first = _empirical_error(matrix, set(range(200)))
        second = _empirical_error(matrix, set(range(200, 400)))
        # Rates ramp up by 0.4 over the horizon: the second half must be
        # clearly noisier than the first.
        assert second > first + 0.1
        assert truth.shape == (7,)
        assert np.all((truth >= 0.0) & (truth <= 1.0))

    def test_zero_drift_rejected(self):
        with pytest.raises(ConfigurationError):
            DriftScenario(name="x", n_workers=5, n_tasks=10, arity=2, drift=0.0)


class TestCollusionScenario:
    def test_full_strength_ring_always_agrees(self, rng):
        scenario = CollusionScenario(
            name="collusion-test",
            n_workers=7,
            n_tasks=200,
            arity=2,
            ring_size=3,
            collusion_strength=1.0,
        )
        matrix, truth = scenario.sample(rng)
        answers = {
            (worker, task): label for worker, task, label in matrix.iter_responses()
        }

        def agreement(a, b):
            common = [
                task
                for task in range(200)
                if (a, task) in answers and (b, task) in answers
            ]
            same = sum(answers[a, task] == answers[b, task] for task in common)
            return same / len(common)

        # Ring members copy the leader verbatim; honest workers cannot
        # match anyone that precisely.
        assert agreement(0, 1) == 1.0
        assert agreement(1, 2) == 1.0
        assert agreement(0, 5) < 1.0
        # With full strength every member's marginal rate is the leader's.
        assert truth[1] == pytest.approx(truth[0])

    def test_ring_size_validation(self):
        with pytest.raises(ConfigurationError):
            CollusionScenario(
                name="x", n_workers=5, n_tasks=10, arity=2, ring_size=1
            )


class TestRevisionStormScenario:
    def test_stream_settles_to_sampled_matrix(self, rng):
        scenario = RevisionStormScenario(
            name="storm-test", n_workers=5, n_tasks=40, arity=2,
            revision_fraction=0.8, max_revisions=3,
        )
        events, matrix, _ = scenario.event_stream(rng)
        # Revisions mean strictly more events than settled responses.
        settled = {(w, t): l for w, t, l in matrix.iter_responses()}
        assert len(events) > len(settled)
        replayed: dict[tuple[int, int], int] = {}
        for worker, task, label in events:
            replayed[(worker, task)] = label
        assert replayed == settled

    def test_streamed_estimates_bit_identical_to_batch(self, rng):
        scenario = RevisionStormScenario(
            name="storm-test", n_workers=6, n_tasks=60, arity=2,
            revision_fraction=0.5,
        )
        events, matrix, _ = scenario.event_stream(rng)
        streamed = replay_stream(events, confidence=0.9, backend="dense")
        batch = MWorkerEstimator(confidence=0.9, backend="dense").evaluate_all(
            matrix
        )
        assert len(streamed) == len(batch)
        for estimate in batch:
            other = streamed[estimate.worker]
            assert other.interval.lower == estimate.interval.lower
            assert other.interval.upper == estimate.interval.upper
            assert other.status is estimate.status


class TestImbalanceScenario:
    def test_prior_honored(self, rng):
        scenario = ImbalanceScenario(
            name="imbalance-test", n_workers=5, n_tasks=400, arity=2,
            positive_prior=0.95,
        )
        matrix, _ = scenario.sample(rng)
        golds = [matrix.gold_label(task) for task in range(400)]
        assert np.mean(golds) > 0.85

    def test_prior_validation(self):
        with pytest.raises(ConfigurationError):
            ImbalanceScenario(
                name="x", n_workers=5, n_tasks=10, arity=2, positive_prior=1.0
            )


class TestHighArity:
    def test_rejects_paper_arities(self):
        with pytest.raises(ConfigurationError):
            high_arity_scenario(arity=4)

    def test_kind_is_kary(self):
        assert high_arity_scenario(arity=6).kind == "kary"
        assert independent_baseline_scenario().kind == "binary"


class TestExpectedCells:
    def test_grid_matches_capability_matrix(self):
        cells = expected_cells()
        for name, family in GAUNTLET_FAMILIES.items():
            for backend in BACKEND_CAPABILITIES:
                for path in supported_estimator_paths(backend, kind=family.kind):
                    assert (name, backend, path) in cells
        # dict has no batched path; kary families only run scalar.
        assert ("independent", "dict", "batched") not in cells
        assert ("high-arity", "dense", "batched") not in cells
        assert ("high-arity", "dense", "streamed") not in cells

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_cells(families=["no-such-family"])
        with pytest.raises(ConfigurationError):
            expected_cells(backends=["no-such-backend"])


class TestGauntletResultsLaziness:
    def test_unrendered_cells_never_computed(self):
        results = GauntletResults(
            n_repetitions=1, seed=3, scenario_overrides=SMALL
        )
        # Construction and grid bookkeeping are free.
        assert results.n_computed_cells == 0
        assert len(results.cell_keys) > 0
        cell = results.cell("independent", "dense", "scalar")
        assert results.n_computed_cells == 1
        # Memoized: re-reading the same cell computes nothing new and
        # returns the identical object.
        assert results.cell("independent", "dense", "scalar") is cell
        assert results.n_computed_cells == 1
        # Gap detection only compares planned keys — still nothing new.
        assert results.gaps == ()
        assert results.n_computed_cells == 1

    def test_cell_values_independent_of_render_order(self):
        direct = GauntletResults(
            families=["independent", "drift"],
            backends=["dense"],
            n_repetitions=2,
            seed=11,
            scenario_overrides=SMALL,
        )
        full = GauntletResults(
            families=["independent", "drift"],
            backends=["dense"],
            n_repetitions=2,
            seed=11,
            scenario_overrides=SMALL,
        )
        one = direct.cell("drift", "dense", "batched")
        for other in full.rows():
            if other.key == one.key:
                assert other.coverage == one.coverage


class TestGapDetection:
    def test_full_grid_has_zero_gaps(self):
        results = GauntletResults(n_repetitions=1, scenario_overrides=SMALL)
        assert results.gaps == ()
        assert results.n_computed_cells == 0

    def test_unplanned_family_flagged(self):
        # Deliberately drop a registered family from the run: every one of
        # its capability-matrix cells must be flagged as untested.
        partial = {
            name: family
            for name, family in GAUNTLET_FAMILIES.items()
            if name != "high-arity"
        }
        results = GauntletResults(
            families=partial, n_repetitions=1, scenario_overrides=SMALL
        )
        gaps = detect_gaps(results)
        assert gaps
        assert all(family == "high-arity" for family, _, _ in gaps)
        assert ("high-arity", "dense", "scalar") in gaps

    def test_unplanned_backend_flagged(self):
        results = GauntletResults(
            backends=["dense", "sparse", "bitset"],
            n_repetitions=1,
            scenario_overrides=SMALL,
        )
        gaps = detect_gaps(results)
        assert gaps
        assert all(backend == "dict" for _, backend, _ in gaps)

    def test_newly_registered_family_creates_obligation(self):
        # Registering a family is what creates the cells gap detection
        # demands: a run planned before the registration must be flagged.
        results = GauntletResults(n_repetitions=1, scenario_overrides=SMALL)
        extra = dict(GAUNTLET_FAMILIES)
        extra["drift-strong"] = GauntletFamily(
            name="drift-strong",
            description="stronger drift",
            kind="binary",
            factory=lambda **kw: DriftScenario(
                name="drift-strong", n_workers=7, n_tasks=50, arity=2,
                drift=0.5, **kw,
            ),
        )
        gaps = detect_gaps(results, families=extra)
        assert gaps
        assert all(family == "drift-strong" for family, _, _ in gaps)


class TestGauntletCoverage:
    def test_collusion_degrades_coverage_vs_independent(self):
        results = GauntletResults(
            families=["independent", "collusion"],
            backends=["dense"],
            n_repetitions=6,
            confidence=0.9,
            seed=5,
            scenario_overrides={
                "independent": {"n_tasks": 80},
                "collusion": {"n_tasks": 80},
            },
        )
        coverage = results.family_coverage
        # Correlated errors violate the independence behind the variance
        # bound: the ring's intervals collapse around the wrong value.
        assert coverage["collusion"] < coverage["independent"] - 0.2

    def test_kary_cell_renders_confusion_coverage(self):
        results = GauntletResults(
            families=["high-arity"],
            backends=["dict", "dense"],
            n_repetitions=1,
            seed=9,
            scenario_overrides={"high-arity": {"n_tasks": 80}},
        )
        cell = results.cell("high-arity", "dense", "scalar")
        # 3 workers x arity^2 confusion cells per non-degenerate estimate.
        arity = results.scenario("high-arity").arity
        expected = (3 - cell.coverage.n_degenerate) * arity * arity
        assert cell.coverage.n_intervals == expected
        assert cell.coverage.n_repetitions == 1

    def test_summary_properties_render_needed_cells(self):
        results = GauntletResults(
            families=["independent", "collusion"],
            backends=["dict"],
            n_repetitions=2,
            seed=13,
            scenario_overrides=SMALL,
        )
        worst = results.worst_calibration
        assert worst.key in results.cell_keys
        coverage = results.family_coverage
        assert set(coverage) == {"independent", "collusion"}
        # Both summaries forced the full (restricted) grid.
        assert results.n_computed_cells == len(results.cell_keys)
        # Full-strength collusion is the grid's miscalibration champion.
        assert worst.family == "collusion"

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            GauntletResults(n_repetitions=0)
        with pytest.raises(ConfigurationError):
            GauntletResults(confidence=1.0)
        with pytest.raises(ConfigurationError):
            GauntletResults(families=["no-such-family"])
        with pytest.raises(ConfigurationError):
            GauntletResults(backends=["no-such-backend"])

    def test_unsupported_path_rejected(self):
        results = GauntletResults(n_repetitions=1, scenario_overrides=SMALL)
        with pytest.raises(ConfigurationError):
            results.cell("independent", "dict", "batched")
        with pytest.raises(ConfigurationError):
            results.cell("high-arity", "dense", "streamed")

    def test_report_and_table_well_formed(self):
        results = GauntletResults(
            families=["independent"],
            backends=["dict"],
            n_repetitions=1,
            scenario_overrides=SMALL,
        )
        report = results.to_report()
        assert len(report["cells"]) == len(results.cell_keys)
        for cell in report["cells"]:
            for field in (
                "family", "backend", "path", "coverage", "calibration_error",
                "mean_size", "n_degenerate", "n_skipped_repetitions",
                "n_repetitions",
            ):
                assert field in cell
        # The restricted run plans only a sliver of the registry's grid.
        assert report["gaps"]
        table = format_gauntlet_report(results)
        assert "UNTESTED CELLS" in table
        assert "independent" in table
