"""Unit tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation import (
    PAPER_CONFUSION_MATRICES,
    PAPER_ERROR_RATES,
    BinaryWorkerPopulation,
    KaryWorkerPopulation,
    attempt_mask,
    paper_binary_scenario,
    paper_kary_scenario,
    per_worker_density_ramp,
    random_confusion_matrix,
    sample_confusion_matrices,
    sample_error_rates,
    simulate_binary_responses,
    simulate_kary_responses,
    uniform_density,
    weight_optimization_scenario,
)
from repro.simulation.scenarios import SimulationScenario


class TestDensity:
    def test_uniform_density(self):
        densities = uniform_density(4, 0.7)
        assert np.allclose(densities, 0.7)
        assert densities.shape == (4,)

    @pytest.mark.parametrize("bad", [0.0, 1.5, -0.1])
    def test_uniform_density_validation(self, bad):
        with pytest.raises(ConfigurationError):
            uniform_density(3, bad)

    def test_per_worker_density_ramp_matches_paper_formula(self):
        m = 7
        densities = per_worker_density_ramp(m)
        expected = [(0.5 * i + (m - i)) / m for i in range(1, m + 1)]
        assert np.allclose(densities, expected)
        assert densities[0] > densities[-1]
        assert densities[-1] == pytest.approx(0.5)

    def test_attempt_mask_shape_and_density(self, rng):
        mask = attempt_mask(5, 400, 0.8, rng)
        assert mask.shape == (5, 400)
        assert 0.7 < mask.mean() < 0.9

    def test_attempt_mask_guarantees_pairwise_overlap(self, rng):
        mask = attempt_mask(6, 30, 0.4, rng, ensure_pairwise_overlap=True)
        overlaps = mask.astype(int) @ mask.astype(int).T
        off_diagonal = overlaps[~np.eye(6, dtype=bool)]
        assert off_diagonal.min() >= 2

    def test_attempt_mask_per_worker_densities(self, rng):
        densities = np.array([1.0, 0.2])
        mask = attempt_mask(2, 500, densities, rng, ensure_pairwise_overlap=False)
        assert mask[0].mean() == pytest.approx(1.0)
        assert mask[1].mean() == pytest.approx(0.2, abs=0.08)

    def test_attempt_mask_validation(self, rng):
        with pytest.raises(ConfigurationError):
            attempt_mask(0, 10, 0.5, rng)
        with pytest.raises(ConfigurationError):
            attempt_mask(3, 10, np.array([0.5, 0.5]), rng)


class TestBinarySimulation:
    def test_sample_error_rates_from_paper_palette(self, rng):
        rates = sample_error_rates(500, rng)
        assert set(np.unique(rates)).issubset(set(PAPER_ERROR_RATES))

    def test_sample_error_rates_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_error_rates(0, rng)
        with pytest.raises(ConfigurationError):
            sample_error_rates(3, rng, palette=[1.2])

    def test_population_validation(self):
        with pytest.raises(ConfigurationError):
            BinaryWorkerPopulation(error_rates=np.array([1.5]))
        with pytest.raises(ConfigurationError):
            BinaryWorkerPopulation(error_rates=np.array([0.1]), task_positive_prior=0.0)

    def test_generate_shapes_and_gold(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        matrix = population.generate(50, rng, densities=1.0)
        assert matrix.n_workers == 3
        assert matrix.n_tasks == 50
        assert matrix.is_regular
        assert matrix.has_gold
        assert len(matrix.gold_labels) == 50

    def test_generate_respects_error_rates(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.0, 0.3, 0.3]))
        matrix = population.generate(2000, rng)
        assert matrix.empirical_error_rate(0) == 0.0
        assert matrix.empirical_error_rate(1) == pytest.approx(0.3, abs=0.05)

    def test_generate_density(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1] * 4))
        matrix = population.generate(300, rng, densities=0.6)
        assert 0.5 < matrix.density < 0.7

    def test_simulate_binary_responses_helper(self, rng):
        matrix, rates = simulate_binary_responses(5, 80, rng, density=0.9)
        assert matrix.n_workers == 5
        assert rates.shape == (5,)

    def test_generate_validation(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.1, 0.1]))
        with pytest.raises(ConfigurationError):
            population.generate(0, rng)


class TestKarySimulation:
    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_paper_matrices_are_row_stochastic(self, arity):
        for matrix in PAPER_CONFUSION_MATRICES[arity]:
            assert matrix.shape == (arity, arity)
            assert np.allclose(matrix.sum(axis=1), 1.0)
            assert np.all(matrix >= 0.0)

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_paper_matrices_diagonally_dominant(self, arity):
        for matrix in PAPER_CONFUSION_MATRICES[arity]:
            for row in range(arity):
                assert matrix[row, row] == np.max(matrix[row])

    def test_random_confusion_matrix_valid(self, rng):
        matrix = random_confusion_matrix(5, rng)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        for row in range(5):
            assert matrix[row, row] >= 0.6

    def test_random_confusion_matrix_validation(self, rng):
        with pytest.raises(ConfigurationError):
            random_confusion_matrix(1, rng)
        with pytest.raises(ConfigurationError):
            random_confusion_matrix(3, rng, diagonal_low=0.3)

    def test_sample_confusion_matrices_uses_paper_palette(self, rng):
        matrices = sample_confusion_matrices(10, 3, rng)
        palette = PAPER_CONFUSION_MATRICES[3]
        for matrix in matrices:
            assert any(np.allclose(matrix, candidate) for candidate in palette)

    def test_sample_confusion_matrices_generates_for_unknown_arity(self, rng):
        matrices = sample_confusion_matrices(4, 5, rng)
        assert all(m.shape == (5, 5) for m in matrices)

    def test_population_generate(self, rng):
        population = KaryWorkerPopulation(
            confusion_matrices=list(PAPER_CONFUSION_MATRICES[3])
        )
        matrix = population.generate(100, rng, densities=0.9)
        assert matrix.arity == 3
        assert matrix.n_workers == 3
        assert matrix.has_gold

    def test_population_selectivity_validation(self):
        with pytest.raises(ConfigurationError):
            KaryWorkerPopulation(
                confusion_matrices=list(PAPER_CONFUSION_MATRICES[2]),
                selectivity=np.array([0.7, 0.7]),
            )

    def test_population_mixed_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            KaryWorkerPopulation(
                confusion_matrices=[
                    PAPER_CONFUSION_MATRICES[2][0],
                    PAPER_CONFUSION_MATRICES[3][0],
                ]
            )

    def test_simulate_kary_responses_helper(self, rng):
        matrix, confusions = simulate_kary_responses(3, 60, 4, rng, density=0.8)
        assert matrix.arity == 4
        assert len(confusions) == 3

    def test_kary_responses_follow_confusion_matrix(self, rng):
        # A worker who always answers label 0 regardless of the truth.
        degenerate = np.array([[1.0, 0.0], [1.0, 0.0]])
        identity = np.array([[1.0, 0.0], [0.0, 1.0]])
        population = KaryWorkerPopulation(
            confusion_matrices=[degenerate, identity, identity]
        )
        matrix = population.generate(200, rng)
        assert set(matrix.worker_responses(0).values()) == {0}


class TestScenarios:
    def test_paper_binary_scenario_sample(self, rng):
        scenario = paper_binary_scenario(5, 60, density=0.8)
        matrix, truth = scenario.sample(rng)
        assert matrix.n_workers == 5
        assert truth.shape == (5,)

    def test_paper_kary_scenario_sample(self, rng):
        scenario = paper_kary_scenario(3, 40)
        matrix, truth = scenario.sample(rng)
        assert matrix.arity == 3
        assert len(truth) == 3

    def test_weight_optimization_scenario_density_ramp(self):
        scenario = weight_optimization_scenario(n_workers=7)
        assert scenario.effective_densities[0] > scenario.effective_densities[-1]

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationScenario(name="bad", n_workers=2, n_tasks=10)
        with pytest.raises(ConfigurationError):
            SimulationScenario(name="bad", n_workers=3, n_tasks=0)
        with pytest.raises(ConfigurationError):
            SimulationScenario(
                name="bad", n_workers=3, n_tasks=10, densities=np.array([0.5, 0.5])
            )

    def test_densities_copied_not_aliased(self):
        # Regression: np.asarray used to alias the caller's float array, so
        # mutating it after construction silently changed every later
        # sample() draw, bypassing the validation above.
        caller = np.array([0.9, 0.8, 0.7])
        scenario = SimulationScenario(
            name="alias", n_workers=3, n_tasks=10, densities=caller
        )
        caller[:] = 0.0
        assert np.allclose(scenario.effective_densities, [0.9, 0.8, 0.7])

    def test_densities_read_only(self):
        scenario = SimulationScenario(
            name="frozen", n_workers=3, n_tasks=10,
            densities=np.array([0.9, 0.8, 0.7]),
        )
        with pytest.raises(ValueError):
            scenario.effective_densities[0] = 0.1
        # The default (no caller densities) array is frozen too.
        default = SimulationScenario(name="default", n_workers=3, n_tasks=10)
        with pytest.raises(ValueError):
            default.effective_densities[0] = 0.1
