"""Unit tests for the workforce (hire/fire) policies and pool simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.types import ConfidenceInterval, WorkerErrorEstimate
from repro.workforce import (
    Decision,
    IntervalFiringPolicy,
    PointEstimateFiringPolicy,
    simulate_worker_pool,
)


def estimate_with(mean: float, lower: float, upper: float) -> WorkerErrorEstimate:
    interval = ConfidenceInterval(
        mean=mean, lower=lower, upper=upper, confidence=0.9, deviation=0.05
    )
    return WorkerErrorEstimate(worker=0, interval=interval, n_tasks=30)


class TestPolicies:
    def test_point_policy_fires_on_high_mean(self):
        policy = PointEstimateFiringPolicy(max_error_rate=0.25)
        assert policy.decide(estimate_with(0.3, 0.2, 0.4)) is Decision.FIRE
        assert policy.decide(estimate_with(0.2, 0.1, 0.3)) is Decision.RETAIN

    def test_interval_policy_needs_proof_to_fire(self):
        policy = IntervalFiringPolicy(max_error_rate=0.25)
        # High point estimate but the interval still allows a good worker.
        assert policy.decide(estimate_with(0.3, 0.15, 0.45)) is Decision.RETAIN
        # The whole interval is above the threshold -> fire.
        assert policy.decide(estimate_with(0.4, 0.3, 0.5)) is Decision.FIRE
        # The whole interval is below the threshold -> cleared.
        assert policy.decide(estimate_with(0.1, 0.05, 0.2)) is Decision.CLEARED

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            PointEstimateFiringPolicy(max_error_rate=0.0)
        with pytest.raises(ConfigurationError):
            IntervalFiringPolicy(max_error_rate=1.0)

    def test_interval_policy_is_more_cautious_than_point_policy(self):
        """Whenever the interval policy fires, the point policy fires too."""
        point = PointEstimateFiringPolicy(max_error_rate=0.25)
        interval = IntervalFiringPolicy(max_error_rate=0.25)
        rng = np.random.default_rng(5)
        for _ in range(200):
            mean = rng.uniform(0.0, 0.6)
            half = rng.uniform(0.0, 0.3)
            estimate = estimate_with(
                mean, max(0.0, mean - half), min(1.0, mean + half)
            )
            if interval.decide(estimate) is Decision.FIRE:
                assert point.decide(estimate) is Decision.FIRE


class TestPoolSimulation:
    def test_result_structure(self, rng):
        result = simulate_worker_pool(
            IntervalFiringPolicy(max_error_rate=0.25),
            rng,
            n_workers=6,
            tasks_per_round=40,
            n_rounds=3,
        )
        assert len(result.final_error_rates) == 6
        assert result.rounds_run == 3
        assert len(result.history) == 3
        assert 0.0 <= result.mean_final_error_rate <= 1.0

    def test_firing_counts_are_consistent(self, rng):
        result = simulate_worker_pool(
            PointEstimateFiringPolicy(max_error_rate=0.25),
            rng,
            n_workers=6,
            tasks_per_round=40,
            n_rounds=4,
        )
        assert result.fired_good_workers >= 0
        assert result.fired_bad_workers >= 0

    def test_interval_policy_fires_fewer_good_workers(self):
        fired_good = {}
        for label, policy in (
            ("interval", IntervalFiringPolicy(max_error_rate=0.25)),
            ("point", PointEstimateFiringPolicy(max_error_rate=0.25)),
        ):
            total = 0
            for seed in range(6):
                rng = np.random.default_rng(100 + seed)
                result = simulate_worker_pool(
                    policy, rng, n_workers=8, tasks_per_round=50, n_rounds=4
                )
                total += result.fired_good_workers
            fired_good[label] = total
        assert fired_good["interval"] <= fired_good["point"]

    def test_bad_workers_get_removed(self, rng):
        result = simulate_worker_pool(
            IntervalFiringPolicy(max_error_rate=0.25),
            rng,
            n_workers=9,
            tasks_per_round=80,
            n_rounds=6,
            error_rate_palette=(0.05, 0.45),
        )
        # After several rounds the surviving pool should be mostly good.
        assert result.mean_final_error_rate < 0.3

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_worker_pool(
                IntervalFiringPolicy(), rng, n_workers=2, n_rounds=1
            )
        with pytest.raises(ConfigurationError):
            simulate_worker_pool(
                IntervalFiringPolicy(), rng, n_workers=5, n_rounds=0
            )
