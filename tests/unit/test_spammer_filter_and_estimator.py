"""Unit tests for the spammer filter and the WorkerEvaluator façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import WorkerEvaluator, evaluate_kary_workers, evaluate_workers
from repro.core.spammer_filter import filter_spammers
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.binary import BinaryWorkerPopulation
from repro.types import KaryWorkerEstimate, WorkerErrorEstimate


def matrix_with_spammer(rng, n_tasks=200) -> tuple[ResponseMatrix, np.ndarray]:
    rates = np.array([0.1, 0.1, 0.15, 0.2, 0.48])
    population = BinaryWorkerPopulation(error_rates=rates)
    return population.generate(n_tasks, rng), rates


class TestSpammerFilter:
    def test_removes_near_random_worker(self, rng):
        matrix, _ = matrix_with_spammer(rng)
        result = filter_spammers(matrix, threshold=0.4)
        assert 4 in result.removed_workers
        assert result.filtered.n_workers == 4
        assert result.kept_workers == (0, 1, 2, 3)

    def test_keeps_good_workers(self, rng):
        matrix, _ = matrix_with_spammer(rng)
        result = filter_spammers(matrix, threshold=0.4)
        assert set(result.kept_workers).issuperset({0, 1, 2})

    def test_original_id_mapping(self, rng):
        matrix, _ = matrix_with_spammer(rng)
        result = filter_spammers(matrix, threshold=0.4)
        for new_id, old_id in enumerate(result.kept_workers):
            assert result.original_id(new_id) == old_id
            assert (
                result.filtered.worker_responses(new_id)
                == matrix.worker_responses(old_id)
            )

    def test_never_prunes_below_minimum(self, rng):
        # Everyone looks like a spammer; the filter must still keep 3 workers.
        population = BinaryWorkerPopulation(error_rates=np.full(5, 0.49))
        matrix = population.generate(150, rng)
        result = filter_spammers(matrix, threshold=0.2, min_remaining=3)
        assert result.filtered.n_workers >= 3

    def test_proxies_reported_for_all_workers(self, rng):
        matrix, _ = matrix_with_spammer(rng)
        result = filter_spammers(matrix)
        assert set(result.approximate_error_rates) == set(range(matrix.n_workers))

    def test_worker_without_overlap_is_kept(self):
        matrix = ResponseMatrix(4, 10)
        for worker in (0, 1, 2):
            for task in range(8):
                matrix.add_response(worker, task, task % 2)
        matrix.add_response(3, 9, 1)  # no overlap with anyone
        result = filter_spammers(matrix)
        assert 3 in result.kept_workers
        assert result.approximate_error_rates[3] is None

    def test_threshold_validation(self, small_binary_matrix):
        with pytest.raises(ConfigurationError):
            filter_spammers(small_binary_matrix, threshold=1.5)
        with pytest.raises(ConfigurationError):
            filter_spammers(small_binary_matrix, min_remaining=2)


class TestWorkerEvaluator:
    def test_binary_dispatch(self, simulated_binary):
        matrix, _ = simulated_binary
        results = WorkerEvaluator(confidence=0.9).evaluate(matrix)
        assert set(results) == set(range(matrix.n_workers))
        assert all(isinstance(value, WorkerErrorEstimate) for value in results.values())

    def test_kary_dispatch(self, simulated_kary):
        matrix, _ = simulated_kary
        results = WorkerEvaluator(confidence=0.9).evaluate(matrix)
        assert all(isinstance(value, KaryWorkerEstimate) for value in results.values())

    def test_binary_on_kary_data_rejected(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            WorkerEvaluator().evaluate_binary(matrix)

    def test_too_few_workers_rejected(self):
        matrix = ResponseMatrix(2, 5)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            WorkerEvaluator().evaluate_binary(matrix)

    def test_confidence_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerEvaluator(confidence=0.0)

    def test_spammer_removal_preserves_original_ids(self, rng):
        matrix, _ = matrix_with_spammer(rng)
        results = WorkerEvaluator(confidence=0.9, remove_spammers=True).evaluate_binary(
            matrix
        )
        # The spammer (worker 4) is absent; the others keep their original ids.
        assert 4 not in results
        assert set(results).issubset({0, 1, 2, 3})
        for worker, estimate in results.items():
            assert estimate.worker == worker

    def test_module_level_helpers(self, simulated_binary, simulated_kary):
        binary_matrix, _ = simulated_binary
        kary_matrix, _ = simulated_kary
        binary_results = evaluate_workers(binary_matrix, confidence=0.8)
        kary_results = evaluate_kary_workers(kary_matrix, confidence=0.8)
        assert len(binary_results) == binary_matrix.n_workers
        assert len(kary_results) == 3

    def test_spammer_removal_improves_or_keeps_quality(self, rng):
        """With a spammer in the pool, filtering should not make the good
        workers' estimates worse on average."""
        matrix, rates = matrix_with_spammer(rng, n_tasks=300)
        plain = WorkerEvaluator(confidence=0.8).evaluate_binary(matrix)
        filtered = WorkerEvaluator(confidence=0.8, remove_spammers=True).evaluate_binary(
            matrix
        )
        def mean_abs_error(results):
            return np.mean(
                [abs(results[w].interval.mean - rates[w]) for w in results if w != 4]
            )
        assert mean_abs_error(filtered) <= mean_abs_error(plain) + 0.03
