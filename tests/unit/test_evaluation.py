"""Unit tests for the evaluation harness (coverage, sweeps, reporting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.response_matrix import ResponseMatrix
from repro.evaluation.coverage import (
    CoverageAccountingWarning,
    CoverageResult,
    binary_coverage,
    dataset_coverage,
    kary_coverage,
    kary_dataset_coverage,
    usable_estimate,
)
from repro.types import EstimateStatus
from repro.evaluation.reporting import format_experiment, format_table, series_to_rows
from repro.evaluation.sweeps import Series, SweepResult, run_sweep
from repro.evaluation.experiments import (
    ExperimentResult,
    figure1_old_vs_new,
    figure2b_density,
)
from repro.exceptions import ConfigurationError, InsufficientDataError


class TestCoverageResult:
    def test_accuracy_computation(self):
        result = CoverageResult(n_intervals=10, n_covering=8, mean_size=0.2, mean_absolute_error=0.05)
        assert result.accuracy == pytest.approx(0.8)

    def test_empty_observations(self):
        result = CoverageResult.from_observations([], [], [])
        assert result.n_intervals == 0
        assert np.isnan(result.accuracy)

    def test_from_observations(self):
        result = CoverageResult.from_observations(
            [True, False, True], [0.1, 0.2, 0.3], [0.01, 0.02, 0.03]
        )
        assert result.n_covering == 2
        assert result.mean_size == pytest.approx(0.2)
        assert result.mean_absolute_error == pytest.approx(0.02)

    def test_usable_fraction(self):
        result = CoverageResult(
            n_intervals=10, n_covering=8, mean_size=0.2, mean_absolute_error=0.05,
            n_skipped_repetitions=5, n_repetitions=20,
        )
        assert result.usable_fraction == pytest.approx(0.75)
        # Legacy results that never reported repetitions stay NaN, not 1.0.
        legacy = CoverageResult(10, 8, 0.2, 0.05)
        assert np.isnan(legacy.usable_fraction)

    def test_empty_observations_keep_accounting(self):
        result = CoverageResult.from_observations(
            [], [], [], n_degenerate=2, n_skipped_repetitions=7, n_repetitions=7
        )
        assert result.n_degenerate == 2
        assert result.n_skipped_repetitions == 7
        assert result.usable_fraction == 0.0


class TestUsableEstimate:
    def test_degenerate_excluded_by_default(self):
        assert usable_estimate(EstimateStatus.OK)
        assert usable_estimate(EstimateStatus.CLAMPED)
        assert not usable_estimate(EstimateStatus.DEGENERATE)

    def test_include_degenerate_opt_in(self):
        assert usable_estimate(EstimateStatus.DEGENERATE, include_degenerate=True)


class TestBinaryCoverage:
    def test_coverage_near_nominal(self, rng):
        result = binary_coverage(
            n_workers=5, n_tasks=100, confidence=0.8, rng=rng,
            density=0.8, n_repetitions=30,
        )
        assert result.n_intervals > 0
        assert 0.6 < result.accuracy <= 1.0
        assert 0.0 < result.mean_size < 0.5

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            binary_coverage(5, 100, 0.8, rng, n_repetitions=0)

    def test_higher_confidence_wider_intervals(self, rng):
        low = binary_coverage(5, 100, 0.5, rng, n_repetitions=15)
        high = binary_coverage(5, 100, 0.95, rng, n_repetitions=15)
        assert high.mean_size > low.mean_size

    def test_degenerate_accounting_invariant(self, rng):
        # Tiny task sets force some DEGENERATE estimates; the shared
        # predicate excludes them from the aggregates, and the ledger must
        # balance: every produced estimate is either counted as an interval
        # or as a degenerate.
        result = binary_coverage(
            n_workers=5, n_tasks=4, confidence=0.8, rng=rng,
            density=1.0, n_repetitions=20,
        )
        assert result.n_repetitions == 20
        assert result.n_intervals + result.n_degenerate == 20 * 5


class TestKaryCoverage:
    def test_basic_run(self, rng):
        result = kary_coverage(
            arity=2, n_tasks=150, confidence=0.8, rng=rng, n_repetitions=5
        )
        assert result.n_intervals == 5 * 3 * 4  # reps x workers x matrix cells
        assert 0.5 < result.accuracy <= 1.0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            kary_coverage(2, 100, 0.8, rng, n_repetitions=0)

    @staticmethod
    def _make_flaky_evaluate(monkeypatch, n_failures):
        """Make the first ``n_failures`` triple evaluations raise."""
        from repro.core.kary import KaryEstimator

        original = KaryEstimator.evaluate
        calls = {"n": 0}

        def flaky(self, matrix, workers=None):
            calls["n"] += 1
            if calls["n"] <= n_failures:
                raise InsufficientDataError("injected triple failure")
            return original(self, matrix, workers)

        monkeypatch.setattr(KaryEstimator, "evaluate", flaky)

    def test_skipped_repetitions_counted_and_warned(self, rng, monkeypatch):
        # Repetitions whose triple raises must be counted, not silently
        # dropped — and falling below the usable-fraction threshold warns.
        self._make_flaky_evaluate(monkeypatch, n_failures=5)
        with pytest.warns(CoverageAccountingWarning):
            result = kary_coverage(
                arity=2, n_tasks=60, confidence=0.8, rng=rng, n_repetitions=8
            )
        assert result.n_repetitions == 8
        assert result.n_skipped_repetitions == 5
        assert result.usable_fraction == pytest.approx(3 / 8)
        # The three surviving repetitions still aggregate: every non-
        # degenerate worker estimate contributes its arity^2 cells.
        assert result.n_intervals == (3 * 3 - result.n_degenerate) * 4

    def test_strict_raises_below_threshold(self, rng, monkeypatch):
        self._make_flaky_evaluate(monkeypatch, n_failures=5)
        with pytest.raises(InsufficientDataError, match="usable fraction"):
            kary_coverage(
                arity=2, n_tasks=60, confidence=0.8, rng=rng,
                n_repetitions=8, strict=True,
            )

    def test_minor_skips_stay_quiet(self, rng, monkeypatch):
        import warnings

        self._make_flaky_evaluate(monkeypatch, n_failures=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", CoverageAccountingWarning)
            result = kary_coverage(
                arity=2, n_tasks=60, confidence=0.8, rng=rng, n_repetitions=8
            )
        assert result.n_skipped_repetitions == 1
        assert result.usable_fraction == pytest.approx(7 / 8)

    def test_healthy_run_reports_full_accounting(self, rng):
        result = kary_coverage(
            arity=2, n_tasks=150, confidence=0.8, rng=rng, n_repetitions=5
        )
        assert result.n_repetitions == 5
        assert result.n_skipped_repetitions == 0
        assert result.usable_fraction == 1.0


class TestDatasetCoverage:
    def test_requires_gold(self):
        matrix = ResponseMatrix(3, 5)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            dataset_coverage(matrix, confidence=0.8)

    def test_runs_on_ic_standin(self):
        from repro.data import load_dataset

        matrix = load_dataset("ic")
        result = dataset_coverage(matrix, confidence=0.8)
        assert result.n_intervals > 5
        assert 0.0 <= result.accuracy <= 1.0

    def test_spammer_filtering_changes_population(self):
        from repro.data import load_dataset

        matrix = load_dataset("ic")
        unfiltered = dataset_coverage(matrix, confidence=0.8)
        filtered = dataset_coverage(matrix, confidence=0.8, remove_spammers=True)
        assert filtered.n_intervals <= unfiltered.n_intervals


class TestKaryDatasetCoverage:
    def test_requires_gold(self, rng):
        matrix = ResponseMatrix(3, 5, arity=3)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            kary_dataset_coverage(matrix, 0.8, min_common_tasks=1, n_triples=3, rng=rng)

    def test_runs_on_ws_standin(self, rng):
        from repro.data import load_dataset

        matrix = load_dataset("ws")
        result = kary_dataset_coverage(
            matrix, confidence=0.8, min_common_tasks=10, n_triples=5, rng=rng
        )
        assert result.n_intervals > 0

    def test_impossible_threshold_raises(self, rng):
        from repro.data import load_dataset

        matrix = load_dataset("ws")
        with pytest.raises(InsufficientDataError):
            kary_dataset_coverage(
                matrix, confidence=0.8, min_common_tasks=10**6, n_triples=5, rng=rng
            )


class TestSweeps:
    def test_series_accessors(self):
        series = Series(label="a")
        series.add(0.1, 1.0)
        series.add(0.2, 2.0)
        assert series.xs == [0.1, 0.2]
        assert series.ys == [1.0, 2.0]
        assert series.y_at(0.2) == 2.0
        with pytest.raises(ConfigurationError):
            series.y_at(0.3)

    def test_sweep_result_add_point(self):
        sweep = SweepResult(name="s", x_label="x", y_label="y")
        sweep.add_point("a", 1.0, 2.0)
        sweep.add_point("a", 2.0, 3.0)
        sweep.add_point("b", 1.0, 4.0)
        assert sweep.labels == ["a", "b"]
        assert sweep.series["a"].y_at(2.0) == 3.0

    def test_run_sweep(self):
        result = run_sweep(
            "demo", "x", "y", [1.0, 2.0], ["s1", "s2"],
            evaluate=lambda label, x: x * (2.0 if label == "s2" else 1.0),
        )
        assert result.series["s2"].y_at(2.0) == 4.0


class TestReporting:
    def _sweep(self):
        sweep = SweepResult(name="demo", x_label="confidence", y_label="size")
        sweep.add_point("alpha", 0.5, 0.12345)
        sweep.add_point("alpha", 0.9, 0.2)
        sweep.add_point("beta", 0.5, 0.3)
        return sweep

    def test_series_to_rows_union_of_x(self):
        header, rows = series_to_rows(self._sweep())
        assert header == ["confidence", "alpha", "beta"]
        assert rows[0][0] == "0.5"
        # beta has no point at 0.9 -> dash
        assert rows[1][2] == "-"

    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [["1", "2"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "long header" in lines[0]

    def test_format_experiment_includes_notes_and_parameters(self):
        result = ExperimentResult(
            figure="figX",
            title="demo title",
            sweep=self._sweep(),
            notes="a note",
            parameters={"n": 3},
        )
        text = format_experiment(result)
        assert "figX" in text and "demo title" in text
        assert "n=3" in text and "a note" in text


class TestExperimentFunctions:
    def test_figure1_structure(self):
        result = figure1_old_vs_new(
            n_tasks=60, worker_counts=(3,), confidence_grid=(0.5,), n_repetitions=3
        )
        assert result.figure == "fig1"
        assert set(result.sweep.labels) == {
            "new technique, 3 workers", "old technique, 3 workers"
        }
        assert result.series["new technique, 3 workers"][0][0] == 0.5

    def test_figure2b_structure(self):
        result = figure2b_density(
            configurations=((3, 60),), densities=(0.7, 0.9), n_repetitions=3
        )
        assert result.figure == "fig2b"
        assert len(result.series["3 workers, 60 tasks"]) == 2
