"""Unit tests for the ResponseMatrix data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.response_matrix import UNANSWERED, ResponseMatrix
from repro.exceptions import DataValidationError, InsufficientDataError


class TestConstruction:
    def test_basic_dimensions(self):
        matrix = ResponseMatrix(n_workers=4, n_tasks=10, arity=3)
        assert matrix.n_workers == 4
        assert matrix.n_tasks == 10
        assert matrix.arity == 3
        assert matrix.n_responses == 0
        assert matrix.density == 0.0

    @pytest.mark.parametrize("n_workers,n_tasks,arity", [(0, 5, 2), (3, 0, 2), (3, 5, 1)])
    def test_rejects_bad_dimensions(self, n_workers, n_tasks, arity):
        with pytest.raises(DataValidationError):
            ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)

    def test_from_dense_round_trip(self):
        dense = np.array([[0, 1, UNANSWERED], [1, UNANSWERED, 0]])
        matrix = ResponseMatrix.from_dense(dense)
        assert matrix.n_workers == 2
        assert matrix.n_tasks == 3
        assert matrix.response(0, 0) == 0
        assert matrix.response(0, 2) is None
        assert np.array_equal(matrix.to_dense(), dense)

    def test_from_dense_infers_arity(self):
        dense = np.array([[0, 2], [1, 2]])
        assert ResponseMatrix.from_dense(dense).arity == 3

    def test_from_dense_rejects_non_2d(self):
        with pytest.raises(DataValidationError):
            ResponseMatrix.from_dense(np.zeros((2, 2, 2), dtype=int))

    def test_from_records(self):
        matrix = ResponseMatrix.from_records([(0, 0, 1), (1, 2, 0)])
        assert matrix.n_workers == 2
        assert matrix.n_tasks == 3
        assert matrix.response(1, 2) == 0

    def test_from_records_with_gold(self):
        matrix = ResponseMatrix.from_records([(0, 0, 1)], n_tasks=2, gold={0: 1, 1: 0})
        assert matrix.gold_label(0) == 1
        assert matrix.gold_label(1) == 0

    def test_from_records_rejects_empty(self):
        with pytest.raises(DataValidationError):
            ResponseMatrix.from_records([])

    def test_copy_is_independent(self, small_binary_matrix):
        clone = small_binary_matrix.copy()
        clone.add_response(0, 0, 1)
        assert small_binary_matrix.response(0, 0) == 0
        assert clone.response(0, 0) == 1
        assert clone.gold_labels == small_binary_matrix.gold_labels


class TestMutationAndLookup:
    def test_add_and_overwrite_response(self):
        matrix = ResponseMatrix(2, 3)
        matrix.add_response(0, 1, 1)
        assert matrix.response(0, 1) == 1
        matrix.add_response(0, 1, 0)
        assert matrix.response(0, 1) == 0
        assert matrix.n_responses == 1

    def test_remove_response(self):
        matrix = ResponseMatrix(2, 3)
        matrix.add_response(0, 1, 1)
        matrix.remove_response(0, 1)
        assert matrix.response(0, 1) is None
        assert not matrix.has_response(0, 1)

    def test_remove_absent_response_is_noop(self):
        matrix = ResponseMatrix(2, 3)
        matrix.remove_response(0, 1)
        assert matrix.n_responses == 0

    @pytest.mark.parametrize("worker,task,label", [(-1, 0, 0), (2, 0, 0), (0, 5, 0), (0, 0, 2)])
    def test_add_response_validation(self, worker, task, label):
        matrix = ResponseMatrix(2, 3, arity=2)
        with pytest.raises(DataValidationError):
            matrix.add_response(worker, task, label)

    def test_worker_and_task_views(self, small_binary_matrix):
        assert small_binary_matrix.worker_responses(0) == {
            task: label for task, label in enumerate([0, 1, 0, 1, 0, 1, 0, 1])
        }
        assert small_binary_matrix.task_responses(0) == {0: 0, 1: 0, 2: 1}
        assert small_binary_matrix.tasks_of(1) == set(range(8))
        assert small_binary_matrix.workers_of(3) == {0, 1, 2}
        assert small_binary_matrix.n_tasks_of(2) == 8

    def test_iter_responses_counts(self, small_binary_matrix):
        records = list(small_binary_matrix.iter_responses())
        assert len(records) == 24
        assert all(len(record) == 3 for record in records)

    def test_gold_labels_sequence_and_mapping(self):
        matrix = ResponseMatrix(2, 3)
        matrix.set_gold_labels([0, 1, 0])
        assert matrix.gold_label(1) == 1
        matrix.set_gold_labels({2: 1})
        assert matrix.gold_label(2) == 1
        assert matrix.has_gold

    def test_gold_sequence_wrong_length(self):
        matrix = ResponseMatrix(2, 3)
        with pytest.raises(DataValidationError):
            matrix.set_gold_labels([0, 1])

    def test_regularity_and_density(self, small_binary_matrix):
        assert small_binary_matrix.is_regular
        assert small_binary_matrix.density == 1.0
        small_binary_matrix.remove_response(0, 0)
        assert not small_binary_matrix.is_regular

    def test_is_binary(self):
        assert ResponseMatrix(2, 2, arity=2).is_binary
        assert not ResponseMatrix(2, 2, arity=3).is_binary

    def test_equality(self, small_binary_matrix):
        assert small_binary_matrix == small_binary_matrix.copy()
        other = small_binary_matrix.copy()
        other.add_response(0, 0, 1)
        assert small_binary_matrix != other
        assert small_binary_matrix != "not a matrix"


class TestDerivedStatistics:
    def test_common_tasks(self, non_regular_matrix):
        assert non_regular_matrix.common_tasks(0, 1) == set(range(2, 8))
        assert non_regular_matrix.n_common_tasks(0, 1, 3) == len(set(range(1, 8)) & set(range(2, 8)))

    def test_common_tasks_requires_worker(self, non_regular_matrix):
        with pytest.raises(DataValidationError):
            non_regular_matrix.common_tasks()

    def test_pair_statistics_counts(self, small_binary_matrix):
        stats = small_binary_matrix.pair_statistics(0, 1)
        assert stats.common_tasks == 8
        assert stats.agreements == 7
        assert stats.agreement_rate == pytest.approx(7 / 8)

    def test_pair_statistics_rejects_same_worker(self, small_binary_matrix):
        with pytest.raises(DataValidationError):
            small_binary_matrix.pair_statistics(1, 1)

    def test_agreement_rate_no_overlap(self):
        matrix = ResponseMatrix(2, 4)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 1, 1)
        with pytest.raises(InsufficientDataError):
            matrix.agreement_rate(0, 1)

    def test_response_count_tensor_shape_and_totals(self, small_binary_matrix):
        counts = small_binary_matrix.response_count_tensor((0, 1, 2))
        assert counts.shape == (3, 3, 3)
        assert counts.sum() == 8  # all workers answered all 8 tasks
        assert counts[0].sum() == 0  # worker 0 answered everything

    def test_response_count_tensor_with_gaps(self, non_regular_matrix):
        counts = non_regular_matrix.response_count_tensor((0, 1, 2))
        # tasks 8, 9 were not attempted by worker 0 -> index 0 along first axis
        assert counts[0, :, :].sum() == 2

    def test_response_count_tensor_validation(self, small_binary_matrix):
        with pytest.raises(DataValidationError):
            small_binary_matrix.response_count_tensor((0, 1))
        with pytest.raises(DataValidationError):
            small_binary_matrix.response_count_tensor((0, 1, 1))

    def test_disagreement_with_majority(self, small_binary_matrix):
        # Worker 2 disagrees with the others' majority on tasks 0, 3 and 7;
        # on task 6 the other two workers tie, which counts as agreement.
        assert small_binary_matrix.disagreement_with_majority(2) == pytest.approx(3 / 8)
        # Worker 0 (perfect) is outvoted by the other two on task 6 only.
        assert small_binary_matrix.disagreement_with_majority(0) == pytest.approx(1 / 8)

    def test_disagreement_requires_responses(self):
        matrix = ResponseMatrix(3, 4)
        matrix.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            matrix.disagreement_with_majority(0)

    def test_disagreement_requires_other_workers(self):
        matrix = ResponseMatrix(3, 4)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            matrix.disagreement_with_majority(0)

    def test_empirical_error_rate(self, small_binary_matrix):
        assert small_binary_matrix.empirical_error_rate(0) == 0.0
        assert small_binary_matrix.empirical_error_rate(1) == pytest.approx(1 / 8)
        assert small_binary_matrix.empirical_error_rate(2) == pytest.approx(4 / 8)

    def test_empirical_error_rate_needs_gold(self):
        matrix = ResponseMatrix(2, 3)
        matrix.add_response(0, 0, 1)
        with pytest.raises(InsufficientDataError):
            matrix.empirical_error_rate(0)

    def test_empirical_confusion_matrix(self, small_binary_matrix):
        confusion = small_binary_matrix.empirical_confusion_matrix(1)
        assert confusion.shape == (2, 2)
        # Worker 1 answered label 1 once when gold was 0 (task 6).
        assert confusion[0, 1] == pytest.approx(1 / 4)
        assert confusion[1, 1] == pytest.approx(1.0)

    def test_empirical_confusion_matrix_uniform_for_missing_rows(self):
        matrix = ResponseMatrix(1, 4, arity=3)
        matrix.add_response(0, 0, 0)
        matrix.set_gold_label(0, 0)
        confusion = matrix.empirical_confusion_matrix(0)
        assert confusion[1] == pytest.approx(np.full(3, 1 / 3))


class TestTransformations:
    def test_subset_workers_reindexes(self, non_regular_matrix):
        subset = non_regular_matrix.subset_workers([2, 0])
        assert subset.n_workers == 2
        assert subset.worker_responses(0) == non_regular_matrix.worker_responses(2)
        assert subset.worker_responses(1) == non_regular_matrix.worker_responses(0)
        assert subset.gold_labels == non_regular_matrix.gold_labels

    def test_subset_workers_validation(self, non_regular_matrix):
        with pytest.raises(DataValidationError):
            non_regular_matrix.subset_workers([])
        with pytest.raises(DataValidationError):
            non_regular_matrix.subset_workers([99])

    def test_subset_tasks_reindexes_and_keeps_gold(self, small_binary_matrix):
        subset = small_binary_matrix.subset_tasks([3, 5])
        assert subset.n_tasks == 2
        assert subset.response(0, 0) == small_binary_matrix.response(0, 3)
        assert subset.gold_label(1) == small_binary_matrix.gold_label(5)

    def test_thin_removes_roughly_expected_fraction(self, rng):
        matrix = ResponseMatrix(5, 200)
        for worker in range(5):
            for task in range(200):
                matrix.add_response(worker, task, 0)
        thinned = matrix.thin(0.8, rng)
        assert 0.7 < thinned.density < 0.9
        assert thinned.n_workers == 5 and thinned.n_tasks == 200

    def test_thin_keep_all(self, small_binary_matrix, rng):
        assert small_binary_matrix.thin(1.0, rng).n_responses == 24

    def test_thin_validation(self, small_binary_matrix, rng):
        with pytest.raises(DataValidationError):
            small_binary_matrix.thin(0.0, rng)

    def test_reduce_arity_maps_labels_and_gold(self):
        matrix = ResponseMatrix(1, 3, arity=4)
        matrix.add_response(0, 0, 0)
        matrix.add_response(0, 1, 2)
        matrix.add_response(0, 2, 3)
        matrix.set_gold_labels([0, 2, 3])
        reduced = matrix.reduce_arity({0: 0, 1: 0, 2: 1, 3: 1}, new_arity=2)
        assert reduced.arity == 2
        assert reduced.response(0, 1) == 1
        assert reduced.gold_label(2) == 1

    def test_reduce_arity_requires_mapping(self, small_binary_matrix):
        with pytest.raises(DataValidationError):
            small_binary_matrix.reduce_arity(None)

    def test_reduce_arity_rejects_out_of_range(self):
        matrix = ResponseMatrix(1, 1, arity=3)
        matrix.add_response(0, 0, 2)
        with pytest.raises(DataValidationError):
            matrix.reduce_arity({0: 0, 1: 1, 2: 5}, new_arity=2)

    def test_reduce_arity_rejects_unmapped_label(self):
        matrix = ResponseMatrix(1, 1, arity=3)
        matrix.add_response(0, 0, 2)
        with pytest.raises(DataValidationError):
            matrix.reduce_arity({0: 0, 1: 1}, new_arity=2)

    def test_repr_contains_dimensions(self, small_binary_matrix):
        text = repr(small_binary_matrix)
        assert "n_workers=3" in text and "n_tasks=8" in text
