"""Unit tests for multi-writer durable ingestion (:mod:`repro.serve.multiwriter`).

Pins the pieces the ``multiwriter-resumed`` fuzz column builds on: the
consistent-hash partitioner (deterministic, stable under worker-id growth),
bit-identity of partitioned ingestion against a serial dict-backend build,
per-worker revision ordering across partitions, segment-merge resume
(clean close, grown writer counts, layout mismatches), per-segment epoch
monotonicity, the snapshot fencing invariant (a snapshot at epoch E covers
exactly the records with epoch < E — never a torn partition batch), and the
``open_session`` create-vs-resume / single-vs-multi dispatch.
"""

from __future__ import annotations

import asyncio
import zlib

import numpy as np
import pytest

from repro.core.incremental import IncrementalEvaluator
from repro.exceptions import ConfigurationError, DurableStateError
from repro.serve import (
    MultiWriterSession,
    MultiWriterStore,
    SessionConfig,
    StreamSession,
    open_session,
    partition_for,
)
from repro.serve.durable import DurableStore, load_snapshot_file
from repro.serve.multiwriter import segment_name


def run(coro):
    return asyncio.run(coro)


def make_stream(n_events, n_workers, n_tasks, seed):
    rng = np.random.default_rng(seed)
    return [
        (int(w), int(t), int(label))
        for w, t, label in zip(
            rng.integers(0, n_workers, size=n_events),
            rng.integers(0, n_tasks, size=n_events),
            rng.integers(0, 2, size=n_events),
        )
    ]


def dict_reference(events, confidence=0.95):
    """Estimates from a serial dict-backend build over ``events`` in order."""
    evaluator = IncrementalEvaluator(
        n_workers=3, n_tasks=1, confidence=confidence, backend="dict"
    )
    evaluator.apply_batch(list(events), auto_extend=True)
    return evaluator.estimate_all()


def assert_estimates_equal(actual, expected):
    assert set(actual) == set(expected)
    for worker, ref in expected.items():
        est = actual[worker]
        assert est.interval.mean == ref.interval.mean
        assert est.interval.lower == ref.interval.lower
        assert est.interval.upper == ref.interval.upper
        assert est.interval.deviation == ref.interval.deviation
        assert est.weights == ref.weights
        assert est.status is ref.status


async def feed(session, events):
    async with session:
        for event in events:
            await session.submit(*event)
        await session.flush()
        return await session.evaluate_all()


class TestPartitioner:
    def test_matches_the_documented_hash_exactly(self):
        # Golden values: CRC-32 of the 8-byte little-endian signed id,
        # modulo the partition count.  Any change here silently remaps
        # every worker and breaks resume of existing segment layouts.
        assert [partition_for(w, 3) for w in range(12)] == [
            1, 1, 0, 0, 1, 2, 2, 2, 2, 1, 1, 2,
        ]
        assert [partition_for(w, 4) for w in range(12)] == [
            1, 3, 0, 2, 3, 1, 2, 0, 0, 2, 1, 3,
        ]

    def test_stable_under_worker_id_growth(self):
        # The assignment depends only on the id itself, so a mapping
        # computed over a small id population is unchanged when many new
        # ids appear later (unlike anything keyed on arrival order).
        before = {w: partition_for(w, 4) for w in range(50)}
        for w in range(50, 5000):
            partition_for(w, 4)
        after = {w: partition_for(w, 4) for w in range(50)}
        assert after == before

    def test_single_partition_short_circuits(self):
        assert all(partition_for(w, 1) == 0 for w in range(0, 1000, 97))

    def test_range_and_rough_balance(self):
        for n in (2, 3, 4):
            counts = [0] * n
            for w in range(1000):
                p = partition_for(w, n)
                assert 0 <= p < n
                counts[p] += 1
            assert min(counts) > 1000 // (2 * n)

    @pytest.mark.parametrize("n", [0, -1])
    def test_invalid_partition_count(self, n):
        with pytest.raises(ConfigurationError):
            partition_for(3, n)


class TestInMemoryMultiWriter:
    def test_partitioned_ingest_bit_identical_to_serial_dict_build(self):
        events = make_stream(500, 11, 40, seed=101)

        session = open_session(SessionConfig(writers=3, max_batch=9))
        assert isinstance(session, MultiWriterSession)
        estimates = run(feed(session, events))
        assert_estimates_equal(estimates, dict_reference(events))
        assert session.applied_events == len(events)
        assert session.pending_events == 0

    def test_per_worker_revisions_apply_in_submission_order(self):
        # Same-cell revisions share a worker, hence a partition, hence a
        # queue — their order survives any cross-partition interleaving.
        async def scenario():
            async with open_session(writers=4, max_batch=3) as session:
                for _ in range(10):
                    await session.submit(5, 0, 1)
                    await session.submit(7, 0, 0)
                    await session.submit(5, 0, 0)
                    await session.submit(9, 1, 1)
                    await session.submit(5, 0, 1)  # final revision must win
                await session.flush()
                return session.evaluator.matrix.copy()

        matrix = run(scenario())
        assert matrix.response(5, 0) == 1
        assert matrix.response(7, 0) == 0

    def test_batch_records_are_partition_tagged_and_per_partition_contiguous(self):
        events = make_stream(200, 9, 25, seed=55)

        session = open_session(SessionConfig(writers=3, max_batch=7))
        run(feed(session, events))
        by_partition: dict[int, list] = {}
        for record in session.applied_batches:
            by_partition.setdefault(record.partition, []).append(record)
        assert set(by_partition) <= set(range(3))
        for records in by_partition.values():
            assert records[0].first_seq == 1
            for before, after in zip(records, records[1:]):
                assert after.first_seq == before.last_seq + 1

    def test_submit_requires_running_session(self):
        async def scenario():
            session = open_session(writers=2)
            with pytest.raises(ConfigurationError, match="not running"):
                await session.submit(0, 0, 1)

        run(scenario())


class TestDurableMultiWriter:
    def test_clean_close_resume_is_bit_identical_with_zero_tail_replay(
        self, tmp_path
    ):
        events = make_stream(300, 10, 30, seed=7)
        config = SessionConfig(
            writers=3, durable=tmp_path, snapshot_every=4, fsync=False,
            max_batch=8,
        )
        first = run(feed(open_session(config), events))

        resumed = open_session(config)
        assert isinstance(resumed, MultiWriterSession)
        assert resumed.applied_events == len(events)
        # The final snapshot covers every record: nothing was merge-replayed
        # beyond it and no segment had crash residue to discard.
        assert resumed.durable.discarded_tail_records == 0

        async def read_only():
            async with resumed:
                return await resumed.evaluate_all()

        assert_estimates_equal(run(read_only()), first)
        assert_estimates_equal(first, dict_reference(events))

    def test_resume_under_grown_writer_count_stays_bit_identical(self, tmp_path):
        head, tail = make_stream(240, 12, 35, seed=13), make_stream(
            160, 12, 35, seed=14
        )
        run(
            feed(
                open_session(
                    SessionConfig(
                        writers=2, durable=tmp_path, fsync=False, max_batch=6
                    )
                ),
                head,
            )
        )
        # Old segments keep their sequence continuity; the new count only
        # governs where new events land — and a new segment file appears.
        resumed = open_session(
            SessionConfig(writers=3, durable=tmp_path, fsync=False, max_batch=6)
        )
        assert resumed.writers == 3
        estimates = run(feed(resumed, tail))
        assert_estimates_equal(estimates, dict_reference(head + tail))
        assert (tmp_path / segment_name(2)).exists()

    def test_multiwriter_state_resumes_even_when_config_says_one_writer(
        self, tmp_path
    ):
        events = make_stream(120, 8, 20, seed=21)
        run(
            feed(
                open_session(
                    SessionConfig(writers=3, durable=tmp_path, fsync=False)
                ),
                events,
            )
        )
        resumed = open_session(SessionConfig(writers=1, durable=tmp_path))
        assert isinstance(resumed, MultiWriterSession)
        assert resumed.applied_events == len(events)

    def test_single_writer_layout_refuses_multiwriter_resume(self, tmp_path):
        events = make_stream(60, 6, 15, seed=33)
        run(
            feed(
                open_session(SessionConfig(durable=tmp_path, fsync=False)),
                events,
            )
        )
        assert DurableStore.has_state(tmp_path)
        with pytest.raises(DurableStateError, match="single-writer"):
            open_session(SessionConfig(writers=3, durable=tmp_path))

    def test_fresh_store_refuses_directory_with_existing_state(self, tmp_path):
        run(
            feed(
                open_session(
                    SessionConfig(writers=2, durable=tmp_path, fsync=False)
                ),
                make_stream(40, 5, 10, seed=3),
            )
        )
        store = MultiWriterStore(tmp_path, writers=2)
        with pytest.raises(DurableStateError, match="open_session"):
            store.open(resume=False)

    def test_store_constructor_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            MultiWriterStore(tmp_path, writers=0)
        with pytest.raises(ConfigurationError):
            MultiWriterStore(tmp_path, writers=2, snapshot_every=0)
        with pytest.raises(ConfigurationError):
            MultiWriterStore(tmp_path, writers=2, keep_snapshots=0)

    def test_segment_paths_ignore_non_partition_files(self, tmp_path):
        (tmp_path).mkdir(exist_ok=True)
        (tmp_path / "wal-0.ndjson").write_text("")
        (tmp_path / "wal-17.ndjson").write_text("")
        (tmp_path / "wal-x.ndjson").write_text("")
        (tmp_path / "wal.ndjson").write_text("")
        assert set(MultiWriterStore.segment_paths(tmp_path)) == {0, 17}

    def test_epochs_are_monotonic_within_each_segment(self, tmp_path):
        events = make_stream(180, 10, 25, seed=44)
        run(
            feed(
                open_session(
                    SessionConfig(
                        writers=3,
                        durable=tmp_path,
                        snapshot_every=2,
                        fsync=False,
                        max_batch=5,
                    )
                ),
                events,
            )
        )
        saw_positive = False
        for partition in MultiWriterStore.segment_paths(tmp_path):
            store = DurableStore(tmp_path, wal_name=segment_name(partition))
            records = store.read_batches_with_epoch()
            epochs = [epoch for epoch, _, _, _ in records]
            assert epochs == sorted(epochs)
            saw_positive = saw_positive or any(e > 0 for e in epochs)
            firsts = [first for _, first, _, _ in records]
            assert firsts[0] == 1
            lasts = [last for _, _, last, _ in records]
            assert all(f == l + 1 for f, l in zip(firsts[1:], lasts))
        # With snapshot_every=2 over many batches the fence fired at least
        # once, so some records must carry a bumped epoch.
        assert saw_positive


class TestSnapshotFencing:
    def _run_session(self, tmp_path, events):
        run(
            feed(
                open_session(
                    SessionConfig(
                        writers=3,
                        durable=tmp_path,
                        snapshot_every=2,
                        fsync=False,
                        max_batch=7,
                    )
                ),
                events,
            )
        )

    def test_snapshot_covers_exactly_the_records_below_its_epoch(self, tmp_path):
        """The fencing invariant, checked against the raw segment bytes.

        For every surviving snapshot at epoch E with per-partition applied
        sequences S[p]: each segment record with epoch < E must be fully
        covered (``last <= S[p]``) and each record with epoch >= E must be
        fully uncovered (``first > S[p]``) — a snapshot never splits a
        partition's batch.
        """
        events = make_stream(150, 12, 30, seed=91)
        self._run_session(tmp_path, events)
        snapshots = sorted(tmp_path.glob("snapshot-*.snap"))
        assert snapshots, "the cadence never produced a snapshot"
        segment_records = {
            partition: DurableStore(
                tmp_path, wal_name=segment_name(partition)
            ).read_batches_with_epoch()
            for partition in MultiWriterStore.segment_paths(tmp_path)
        }
        for path in snapshots:
            meta, _ = load_snapshot_file(path)
            fences = meta["multiwriter"]
            fence_epoch = fences["epoch"]
            applied = {int(p): seq for p, seq in fences["partitions"].items()}
            for partition, records in segment_records.items():
                covered = applied.get(partition, 0)
                for epoch, first, last, _ in records:
                    if epoch < fence_epoch:
                        assert last <= covered
                    else:
                        assert first > covered

    def test_snapshot_state_equals_a_serial_build_over_covered_records(
        self, tmp_path
    ):
        """Each snapshot's evaluator state is reproducible from its fences:
        merging every segment's covered records by (epoch, seq, partition)
        and applying them to a fresh dict evaluator yields bit-identical
        estimates — the snapshot observed whole batches only."""
        events = make_stream(150, 12, 30, seed=92)
        self._run_session(tmp_path, events)
        segment_records = {
            partition: DurableStore(
                tmp_path, wal_name=segment_name(partition)
            ).read_batches_with_epoch()
            for partition in MultiWriterStore.segment_paths(tmp_path)
        }
        checked = 0
        for path in sorted(tmp_path.glob("snapshot-*.snap")):
            meta, arrays = load_snapshot_file(path)
            applied = {
                int(p): seq
                for p, seq in meta["multiwriter"]["partitions"].items()
            }
            merged = sorted(
                (
                    (epoch, first, partition, events_)
                    for partition, records in segment_records.items()
                    for epoch, first, last, events_ in records
                    if last <= applied.get(partition, 0)
                ),
            )
            rebuilt = IncrementalEvaluator(
                n_workers=3, n_tasks=1, confidence=0.95, backend="dict"
            )
            for _, _, _, events_ in merged:
                rebuilt.apply_batch(events_, auto_extend=True)
            restored = IncrementalEvaluator.from_state(
                meta, arrays, backend="dict"
            )
            assert_estimates_equal(
                restored.estimate_all(), rebuilt.estimate_all()
            )
            checked += 1
        assert checked > 0


class TestOpenSessionDispatch:
    def test_in_memory_single_writer_builds_a_stream_session(self):
        session = open_session()
        assert isinstance(session, StreamSession)
        assert session.config.writers == 1

    def test_in_memory_multi_writer_builds_a_multiwriter_session(self):
        session = open_session(writers=3)
        assert isinstance(session, MultiWriterSession)
        assert session.writers == 3

    def test_field_overrides_rebuild_the_config(self):
        session = open_session(SessionConfig(writers=2), max_batch=5)
        assert session.config.max_batch == 5
        assert session.config.writers == 2

    def test_rejects_a_non_config_positional(self):
        with pytest.raises(ConfigurationError, match="SessionConfig"):
            open_session({"writers": 2})

    def test_single_writer_durable_round_trip_through_the_front_door(
        self, tmp_path
    ):
        events = make_stream(90, 7, 18, seed=71)
        config = SessionConfig(durable=tmp_path, fsync=False, max_batch=6)
        first = run(feed(open_session(config), events))
        resumed = open_session(config)
        assert isinstance(resumed, StreamSession)
        assert resumed.applied_events == len(events)

        async def read_only():
            async with resumed:
                return await resumed.evaluate_all()

        assert_estimates_equal(run(read_only()), first)
