"""Unit tests for the grouped (cross-worker) Lemma-4/5 aggregation.

The ``batch_lemma4=`` fast path groups workers by triple count, stacks
their Lemma-4 covariance grids and runs Lemma 5 as one batched solve.  The
cross-backend differential suite locks the path on randomized matrices;
the tests here target the ragged shapes and numerical corners that suite
cannot guarantee to hit: workers with 0/1 partners, groups of size 1,
mixed triple counts in one batch, and a near-singular covariance inside an
otherwise healthy batch (the per-matrix fallback must not perturb its
batch-mates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.m_worker import MWorkerEstimator
from repro.core.weights import batched_optimal_weights, optimal_weights
from repro.data.dense_backend import DenseAgreementBackend
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, DegenerateEstimateError
from repro.stats.covariance import (
    batched_regularize_covariance,
    regularize_covariance,
)
from repro.stats.linalg import (
    batched_optimal_min_variance_weights,
    optimal_min_variance_weights,
)
from repro.types import EstimateStatus


def assert_all_bit_identical(reference, candidate):
    assert len(candidate) == len(reference)
    for ref, cand in zip(reference, candidate):
        assert cand.worker == ref.worker
        assert cand.interval.mean == ref.interval.mean
        assert cand.interval.lower == ref.interval.lower
        assert cand.interval.upper == ref.interval.upper
        assert cand.interval.deviation == ref.interval.deviation
        assert cand.weights == ref.weights
        assert cand.status is ref.status
        for triple_a, triple_b in zip(ref.triples, cand.triples):
            assert triple_b.partners == triple_a.partners
            assert triple_b.error_rate == triple_a.error_rate
            assert triple_b.deviation == triple_a.deviation
            assert triple_b.derivatives == triple_a.derivatives


def random_matrix(seed, n_workers, n_tasks, density=0.7, error=0.25):
    rng = np.random.default_rng(seed)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
    truth = rng.integers(0, 2, size=n_tasks)
    for worker in range(n_workers):
        for task in np.nonzero(rng.random(n_tasks) < density)[0]:
            label = int(truth[task])
            if rng.random() < error:
                label = 1 - label
            matrix.add_response(worker, int(task), label)
    return matrix


def paths(matrix, **kwargs):
    reference = MWorkerEstimator(
        backend="dense", batch_triples=True, batch_lemma4=False, **kwargs
    ).evaluate_all(matrix)
    candidate = MWorkerEstimator(
        backend="dense", batch_triples=True, batch_lemma4=True, **kwargs
    ).evaluate_all(matrix)
    return reference, candidate


class TestRaggedShapes:
    def test_zero_and_single_partner_workers(self):
        """Silent, isolated and barely-connected workers across the batch."""
        base = random_matrix(11, 8, 40)
        matrix = ResponseMatrix(n_workers=11, n_tasks=42, arity=2)
        for worker, task, label in base.iter_responses():
            matrix.add_response(worker, task, label)
        # Worker 8: answers a task nobody else touches (no usable partner).
        matrix.add_response(8, 40, 1)
        # Worker 9: overlaps exactly one other worker (at most one triple).
        matrix.add_response(9, 0, 1)
        matrix.add_response(9, 41, 0)
        # Worker 10: silent.
        reference, candidate = paths(matrix)
        assert_all_bit_identical(reference, candidate)
        statuses = {est.worker: est.status for est in candidate}
        assert statuses[8] is EstimateStatus.DEGENERATE
        assert statuses[10] is EstimateStatus.DEGENERATE

    def test_mixed_triple_counts_and_singleton_groups(self, monkeypatch):
        """Block-structured overlap yields several group sizes, incl. 1."""
        matrix = ResponseMatrix(n_workers=13, n_tasks=40, arity=2)
        rng = np.random.default_rng(23)
        truth = rng.integers(0, 2, size=40)

        def answer(worker, tasks, error):
            for task in tasks:
                label = int(truth[task])
                if rng.random() < error:
                    label = 1 - label
                matrix.add_response(worker, int(task), label)

        # Two mutually disjoint blocks plus one hub worker spanning both:
        # block-A workers see 7 candidates (3 triples), block-B workers 5
        # (2 triples), and the hub sees all 12 — a triple count nobody else
        # has, so its group has size one.
        for worker in range(7):
            answer(worker, range(20), 0.2)
        for worker in range(7, 12):
            answer(worker, range(20, 40), 0.25)
        answer(12, range(40), 0.2)

        group_sizes: list[int] = []
        original = MWorkerEstimator._finalize_worker_group

        def spy(self, matrix_, stats, group):
            group_sizes.append(len(group))
            return original(self, matrix_, stats, group)

        monkeypatch.setattr(MWorkerEstimator, "_finalize_worker_group", spy)
        reference, candidate = paths(matrix)
        assert_all_bit_identical(reference, candidate)
        # The batched run must actually have grouped, including at least one
        # singleton group (otherwise this test isn't exercising raggedness).
        assert group_sizes, "grouped aggregation never ran"
        assert min(group_sizes) == 1
        assert max(group_sizes) > 1
        triple_counts = {len(est.triples) for est in candidate}
        assert len(triple_counts) >= 3

    def test_uniform_weights_ride_the_same_path(self):
        matrix = random_matrix(31, 9, 50)
        reference, candidate = paths(matrix, optimize_weights=False)
        assert_all_bit_identical(reference, candidate)

    def test_worker_range_subsets_match_full_run(self):
        """Shard-style subranges compose to the full batched run."""
        matrix = random_matrix(41, 10, 45)
        estimator = MWorkerEstimator(backend="dense", batch_lemma4=True)
        from repro.core.agreement import compute_agreement_statistics

        stats = compute_agreement_statistics(matrix, backend="dense")
        full = estimator.evaluate_worker_range(
            matrix, stats, list(range(matrix.n_workers))
        )
        split = estimator.evaluate_worker_range(
            matrix, stats, [0, 1, 2, 3]
        ) + estimator.evaluate_worker_range(
            matrix, stats, [4, 5, 6, 7, 8, 9]
        )
        assert_all_bit_identical(full, split)


class TestNearSingularBatches:
    def test_duplicate_workers_keep_batch_mates_bit_identical(self):
        """Identical twin workers make some covariance grids (near-)singular;
        the per-matrix fallback must not perturb the healthy batch-mates."""
        base = random_matrix(53, 8, 60, density=1.0)
        matrix = ResponseMatrix(n_workers=10, n_tasks=60, arity=2)
        for worker, task, label in base.iter_responses():
            matrix.add_response(worker, task, label)
        # Workers 8 and 9 clone workers 0 and 1 response-for-response:
        # triples built on the twins carry identical information.
        for task, label in base.worker_responses(0).items():
            matrix.add_response(8, task, label)
        for task, label in base.worker_responses(1).items():
            matrix.add_response(9, task, label)
        reference, candidate = paths(matrix)
        assert_all_bit_identical(reference, candidate)

    def test_batched_regularize_matches_per_matrix(self):
        rng = np.random.default_rng(5)
        healthy = []
        for _ in range(3):
            a = rng.normal(size=(4, 4))
            healthy.append(a @ a.T + 0.5 * np.eye(4))
        singular = np.ones((4, 4))  # rank one: batched Cholesky rejects it
        indefinite = np.diag([1.0, -0.5, 2.0, 1.0])
        stack = np.stack([healthy[0], singular, healthy[1], indefinite, healthy[2]])
        repaired = batched_regularize_covariance(stack)
        for index in range(stack.shape[0]):
            expected = regularize_covariance(stack[index])
            assert (repaired[index] == expected).all(), index

    def test_batched_min_variance_weights_match_per_matrix(self):
        rng = np.random.default_rng(6)
        matrices = []
        for _ in range(4):
            a = rng.normal(size=(5, 5))
            matrices.append(a @ a.T + 0.1 * np.eye(5))
        # An exactly singular system lands in the per-matrix solve fallback.
        matrices.insert(2, np.ones((5, 5)))
        stack = np.stack(matrices)
        weights = batched_optimal_min_variance_weights(stack)
        for index in range(stack.shape[0]):
            expected = optimal_min_variance_weights(stack[index])
            assert (weights[index] == expected).all(), index

    def test_batched_optimal_weights_match_scalar(self):
        rng = np.random.default_rng(7)
        stack = np.stack(
            [
                np.diag([1.0, 2.0, 3.0]),
                np.ones((3, 3)),
                (lambda a: a @ a.T + 0.2 * np.eye(3))(rng.normal(size=(3, 3))),
            ]
        )
        weights = batched_optimal_weights(stack)
        for index in range(stack.shape[0]):
            expected = optimal_weights(stack[index])
            assert (weights[index] == expected).all(), index

    def test_batched_kernel_shape_validation(self):
        with pytest.raises(ConfigurationError):
            batched_regularize_covariance(np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            batched_optimal_weights(np.ones((2, 3, 4)))
        with pytest.raises(DegenerateEstimateError):
            batched_optimal_min_variance_weights(np.ones((4, 2)))
        assert (batched_optimal_weights(np.ones((3, 1, 1))) == 1.0).all()


class TestTripleCountTensor:
    def test_tensor_matches_per_worker_grids(self):
        matrix = random_matrix(61, 7, 35)
        backend = DenseAgreementBackend.from_matrix(matrix)
        tensor = backend.triple_count_tensor()
        assert tensor is not None
        for worker in range(matrix.n_workers):
            partners = np.array(
                [w for w in range(matrix.n_workers) if w != worker]
            )
            expected = backend.triple_count_matrix(worker, partners)
            grid = tensor[worker][partners[:, None], partners[None, :]]
            assert (grid == expected).all()
            # Degenerate diagonal rows: c_{w,w,x} collapses to the pair count.
            assert (tensor[worker, worker, :] == backend.common_counts[worker]).all()

    def test_tensor_respects_memory_cap(self, monkeypatch):
        matrix = random_matrix(62, 6, 20)
        backend = DenseAgreementBackend.from_matrix(matrix)
        monkeypatch.setattr(
            DenseAgreementBackend, "_TRIPLE_TENSOR_CELL_LIMIT", 6**3 - 1
        )
        assert backend.triple_count_tensor() is None
        # The per-worker grid fallback still serves exact counts.
        partners = np.array([1, 2, 3])
        grid = backend.triple_count_grid_full(0)[partners[:, None], partners[None, :]]
        assert (grid == backend.triple_count_matrix(0, partners)).all()

    def test_tensor_invalidated_by_delta_updates(self):
        matrix = random_matrix(63, 5, 25)
        backend = DenseAgreementBackend.from_matrix(matrix)
        assert backend.triple_count_tensor() is not None  # warm the cache
        previous = matrix.response(0, 3)
        label = 0 if previous == 1 else 1
        backend.apply_response(0, 3, label, previous)
        after = backend.triple_count_tensor()
        # Ground truth: a backend rebuilt from the updated matrix.
        matrix.add_response(0, 3, label)
        reference = DenseAgreementBackend.from_matrix(matrix).triple_count_tensor()
        assert (after == reference).all()
