"""Seeded property fuzz for the sparse/bitset agreement backends.

Complements the structured cases of the cross-backend differential suite
with adversarial randomized ones, following the 50-seed parametrized-loop
pattern of ``test_incremental_and_new_baselines.py``: each seed draws a
*ragged* sparse response matrix — per-worker densities spanning the whole
0.01–0.9 regime, workers left with zero or one usable partner, and blocks
of degenerate all-agree columns (which drive agreement rates onto the
clamp) — and asserts that the sparse and bitset backends reproduce the
dict-of-dicts reference bit for bit on batch evaluation and on the spammer
filter's proxies.
"""

from __future__ import annotations

import numpy as np

from test_cross_backend_differential import assert_estimates_bit_identical

from repro.core.m_worker import MWorkerEstimator
from repro.core.spammer_filter import filter_spammers
from repro.data.response_matrix import ResponseMatrix


def _ragged_matrix(seed: int) -> ResponseMatrix:
    """One adversarial ragged matrix per seed (see module docstring)."""
    fuzz = np.random.default_rng(seed)
    n_workers = int(fuzz.integers(5, 11))
    n_tasks = int(fuzz.integers(25, 70))
    arity = 2
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    truth = fuzz.integers(0, arity, size=n_tasks)
    # Ragged fill: a mix of near-empty (0.01) and near-full (0.9) workers.
    densities = np.where(
        fuzz.random(n_workers) < 0.3,
        fuzz.uniform(0.01, 0.08, size=n_workers),
        fuzz.uniform(0.15, 0.9, size=n_workers),
    )
    error_rates = fuzz.uniform(0.0, 0.45, size=n_workers)
    # A block of degenerate all-agree columns: everyone who answers these
    # tasks answers the planted truth, pushing pair agreement rates to 1.
    all_agree_until = int(fuzz.integers(0, n_tasks // 3 + 1))
    for worker in range(n_workers):
        attempted = np.nonzero(fuzz.random(n_tasks) < densities[worker])[0]
        for task in attempted.tolist():
            if task < all_agree_until or fuzz.random() >= error_rates[worker]:
                label = int(truth[task])
            else:
                label = int(1 - truth[task])
            matrix.add_response(worker, task, label)
    # 0/1-partner workers: one worker answering a single task nobody else
    # touched (zero partners), and — on odd seeds — a pair overlapping only
    # each other on one dedicated task (exactly one usable partner).
    loner = int(fuzz.integers(0, n_workers))
    lone_task = int(fuzz.integers(0, n_tasks))
    for other in range(n_workers):
        if other != loner:
            matrix.remove_response(other, lone_task)
    matrix.add_response(loner, lone_task, int(truth[lone_task]))
    if seed % 2 and n_tasks > 1:
        pair_task = (lone_task + 1) % n_tasks
        first, second = sorted(fuzz.choice(n_workers, size=2, replace=False))
        for other in range(n_workers):
            if other not in (first, second):
                matrix.remove_response(other, pair_task)
        matrix.add_response(first, pair_task, int(truth[pair_task]))
        matrix.add_response(second, pair_task, int(truth[pair_task]))
    return matrix


def _assert_bit_identical(reference, candidate, context: str) -> None:
    """Length check plus the differential suite's per-estimate equality
    (shared so the exact-equality contract lives in exactly one place)."""
    assert len(candidate) == len(reference), context
    for ref, cand in zip(reference, candidate):
        assert_estimates_bit_identical(ref, cand, context)


def test_sparse_and_bitset_fuzz_match_dict_reference():
    """50-seed fuzz: ragged sparse matrices, bit-identical across backends."""
    n_seeds = 50
    for seed in range(n_seeds):
        matrix = _ragged_matrix(seed)
        reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(
            matrix
        )
        for backend in ("sparse", "bitset"):
            candidate = MWorkerEstimator(
                confidence=0.9, backend=backend
            ).evaluate_all(matrix)
            _assert_bit_identical(reference, candidate, f"seed={seed} {backend}")
        # The spammer filter's majority-disagreement proxies come from an
        # entirely different read path (vote table); pin those too.
        dict_proxies = filter_spammers(matrix, backend="dict").approximate_error_rates
        for backend in ("sparse", "bitset"):
            assert (
                filter_spammers(matrix, backend=backend).approximate_error_rates
                == dict_proxies
            ), f"seed={seed} {backend} proxies"


def test_sparse_and_bitset_fuzz_scalar_paths_match():
    """A smaller sweep with the batched stages off: the scalar aggregation
    reads per-pair statistics through the same backend interface and must
    agree with the batched reads (both equal the dict reference)."""
    for seed in range(10):
        matrix = _ragged_matrix(seed)
        reference = MWorkerEstimator(confidence=0.85, backend="dict").evaluate_all(
            matrix
        )
        for backend in ("sparse", "bitset"):
            candidate = MWorkerEstimator(
                confidence=0.85,
                backend=backend,
                batch_triples=False,
                batch_lemma4=False,
            ).evaluate_all(matrix)
            _assert_bit_identical(reference, candidate, f"seed={seed} {backend}")
