"""Property-based tests on the data layer and simulators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dawid_skene import dawid_skene
from repro.core.m_worker import evaluate_all_workers
from repro.data.loaders import load_response_matrix_json, save_response_matrix_json
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import BinaryWorkerPopulation
from repro.types import EstimateStatus


@st.composite
def response_matrices(draw, max_workers=6, max_tasks=12, max_arity=4):
    """Random sparse response matrices with optional gold labels."""
    n_workers = draw(st.integers(min_value=1, max_value=max_workers))
    n_tasks = draw(st.integers(min_value=1, max_value=max_tasks))
    arity = draw(st.integers(min_value=2, max_value=max_arity))
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    n_responses = draw(st.integers(min_value=0, max_value=n_workers * n_tasks))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    for _ in range(n_responses):
        matrix.add_response(
            int(rng.integers(0, n_workers)),
            int(rng.integers(0, n_tasks)),
            int(rng.integers(0, arity)),
        )
    if draw(st.booleans()):
        matrix.set_gold_labels([int(rng.integers(0, arity)) for _ in range(n_tasks)])
    return matrix


@settings(max_examples=60, deadline=None)
@given(matrix=response_matrices())
def test_json_round_trip_preserves_matrix(matrix, tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "matrix.json"
    save_response_matrix_json(matrix, path)
    assert load_response_matrix_json(path) == matrix


@settings(max_examples=60, deadline=None)
@given(matrix=response_matrices())
def test_dense_round_trip_preserves_responses(matrix):
    rebuilt = ResponseMatrix.from_dense(matrix.to_dense(), arity=matrix.arity)
    assert rebuilt.n_responses == matrix.n_responses
    for worker, task, label in matrix.iter_responses():
        assert rebuilt.response(worker, task) == label


@settings(max_examples=60, deadline=None)
@given(matrix=response_matrices())
def test_density_consistent_with_counts(matrix):
    assert matrix.density * matrix.n_workers * matrix.n_tasks == pytest.approx(
        matrix.n_responses
    )


@settings(max_examples=40, deadline=None)
@given(matrix=response_matrices(max_workers=5, max_tasks=8), seed=st.integers(0, 1000))
def test_thin_never_adds_responses(matrix, seed):
    rng = np.random.default_rng(seed)
    thinned = matrix.thin(0.5, rng)
    assert thinned.n_responses <= matrix.n_responses
    for worker, task, label in thinned.iter_responses():
        assert matrix.response(worker, task) == label


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_workers=st.integers(min_value=3, max_value=8),
    n_tasks=st.integers(min_value=20, max_value=60),
)
def test_simulated_gold_labels_consistent_with_errors(seed, n_workers, n_tasks):
    """The fraction of wrong answers in the simulator matches the recorded gold."""
    rng = np.random.default_rng(seed)
    population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
    matrix = population.generate(n_tasks, rng, densities=0.9)
    for worker in range(n_workers):
        responses = matrix.worker_responses(worker)
        if not responses:
            continue
        wrong = sum(
            1 for task, label in responses.items() if label != matrix.gold_label(task)
        )
        assert 0 <= wrong <= len(responses)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_estimator_is_permutation_equivariant_for_single_triple(seed):
    """Renaming the workers of a 3-worker dataset permutes the estimates but
    does not change them.

    (For larger pools the greedy pairing of Algorithm A2 breaks overlap ties
    by worker order, so exact equivariance is not expected — only statistical
    equivalence.)
    """
    n_workers = 3
    rng = np.random.default_rng(seed)
    population = BinaryWorkerPopulation.from_paper_palette(n_workers, rng)
    matrix = population.generate(80, rng, densities=0.9)
    permutation = list(np.random.default_rng(seed + 1).permutation(n_workers))
    permuted_matrix = matrix.subset_workers(permutation)

    original = evaluate_all_workers(matrix, confidence=0.8)
    permuted = evaluate_all_workers(permuted_matrix, confidence=0.8)
    for new_id, old_id in enumerate(permutation):
        assert permuted[new_id].interval.mean == pytest.approx(
            original[old_id].interval.mean, abs=1e-9
        )
        assert permuted[new_id].interval.size == pytest.approx(
            original[old_id].interval.size, abs=1e-9
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_interval_bounds_always_valid_probabilities(seed):
    rng = np.random.default_rng(seed)
    population = BinaryWorkerPopulation.from_paper_palette(5, rng)
    matrix = population.generate(50, rng, densities=0.7)
    for estimate in evaluate_all_workers(matrix, confidence=0.9):
        assert 0.0 <= estimate.interval.lower <= estimate.interval.upper <= 1.0
        assert isinstance(estimate.status, EstimateStatus)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dawid_skene_log_likelihood_monotone(seed):
    rng = np.random.default_rng(seed)
    population = BinaryWorkerPopulation.from_paper_palette(4, rng)
    matrix = population.generate(60, rng, densities=0.8)
    result = dawid_skene(matrix, max_iterations=25)
    trace = result.log_likelihood_trace
    assert all(later >= earlier - 1e-6 for earlier, later in zip(trace, trace[1:]))
    for confusion in result.confusion_matrices:
        assert np.allclose(confusion.sum(axis=1), 1.0)
