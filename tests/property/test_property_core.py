"""Property-based tests on the core estimator mathematics.

These check the paper's analytical identities on randomly drawn inputs:
Eq. (1) inverts the agreement model, Lemma 2's gradient matches numerical
differentiation, Lemma 5's weights are optimal and sum to one, and the k-ary
ProbEstimate recovers random diagonally-dominant confusion matrices from
exact population counts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.three_worker import (
    error_rate_from_agreements,
    error_rate_gradient,
)
from repro.core.kary import normalize_rows, prob_estimate
from repro.core.weights import combined_variance, optimal_weights
from repro.stats.linalg import align_rows_to_diagonal

error_rates = st.floats(min_value=0.0, max_value=0.45)
agreements = st.floats(min_value=0.55, max_value=0.999)


def expected_agreement(p_a: float, p_b: float) -> float:
    return p_a * p_b + (1.0 - p_a) * (1.0 - p_b)


@settings(max_examples=200, deadline=None)
@given(p1=error_rates, p2=error_rates, p3=error_rates)
def test_eq1_inverts_agreement_model(p1, p2, p3):
    q_12 = expected_agreement(p1, p2)
    q_13 = expected_agreement(p1, p3)
    q_23 = expected_agreement(p2, p3)
    assume(min(q_12, q_13, q_23) > 0.505)
    recovered = error_rate_from_agreements(q_12, q_13, q_23)
    assert abs(recovered - p1) < 1e-7


@settings(max_examples=200, deadline=None)
@given(q_ij=agreements, q_ik=agreements, q_jk=agreements)
def test_gradient_matches_numerical_differentiation(q_ij, q_ik, q_jk):
    assume(min(q_ij, q_ik, q_jk) > 0.56)
    gradient = error_rate_gradient(q_ij, q_ik, q_jk)
    epsilon = 1e-6
    values = [q_ij, q_ik, q_jk]
    for index in range(3):
        up = list(values)
        down = list(values)
        up[index] += epsilon
        down[index] -= epsilon
        numeric = (
            error_rate_from_agreements(*up) - error_rate_from_agreements(*down)
        ) / (2 * epsilon)
        assert abs(gradient[index] - numeric) < 1e-3 * max(1.0, abs(numeric))


@settings(max_examples=200, deadline=None)
@given(q_ij=agreements, q_ik=agreements, q_jk=agreements)
def test_error_rate_estimate_below_half_when_consistent(q_ij, q_ik, q_jk):
    """Whenever the implied ratio is at most 1, the estimate lies in [0, 1/2]."""
    assume(min(q_ij, q_ik, q_jk) > 0.505)
    ratio = (2 * q_ij - 1) * (2 * q_ik - 1) / (2 * q_jk - 1)
    assume(ratio <= 1.0)
    estimate = error_rate_from_agreements(q_ij, q_ik, q_jk)
    assert -1e-9 <= estimate <= 0.5 + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    variances=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=2, max_size=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_lemma5_weights_sum_to_one_and_beat_random(variances, seed):
    rng = np.random.default_rng(seed)
    n = len(variances)
    # Random PSD covariance with the given diagonal scale.
    base = rng.normal(size=(n, n)) * 0.1
    covariance = base @ base.T + np.diag(variances)
    weights = optimal_weights(covariance)
    assert abs(weights.sum() - 1.0) < 1e-9
    best = combined_variance(weights, covariance)
    for _ in range(10):
        raw = rng.random(n)
        candidate = raw / raw.sum()
        assert best <= combined_variance(candidate, covariance) + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    arity=st.integers(min_value=2, max_value=4),
)
def test_prob_estimate_recovers_random_confusion_matrices(seed, arity):
    """ProbEstimate inverts the generative model on exact population counts."""
    rng = np.random.default_rng(seed)
    confusions = []
    for _ in range(3):
        matrix = np.zeros((arity, arity))
        for row in range(arity):
            diagonal = rng.uniform(0.65, 0.9)
            off = rng.dirichlet(np.ones(arity - 1)) * (1.0 - diagonal)
            matrix[row, row] = diagonal
            matrix[row, [c for c in range(arity) if c != row]] = off
        confusions.append(matrix)
    selectivity = rng.dirichlet(np.full(arity, 5.0))
    assume(selectivity.min() > 0.1)

    counts = np.zeros((arity + 1, arity + 1, arity + 1))
    for truth in range(arity):
        for a in range(arity):
            for b in range(arity):
                for c in range(arity):
                    counts[a + 1, b + 1, c + 1] += (
                        100000.0
                        * selectivity[truth]
                        * confusions[0][truth, a]
                        * confusions[1][truth, b]
                        * confusions[2][truth, c]
                    )
    v_estimates = prob_estimate(counts)
    for estimate, truth in zip(v_estimates, confusions):
        assert np.allclose(normalize_rows(estimate), truth, atol=0.05)


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=2, max_value=6),
)
def test_align_rows_is_a_permutation(seed, size):
    rng = np.random.default_rng(seed)
    matrix = rng.random((size, size))
    aligned = align_rows_to_diagonal(matrix)
    # Every original row appears exactly once in the aligned matrix.
    used = set()
    for row in aligned:
        matches = [
            index
            for index in range(size)
            if index not in used and np.allclose(row, matrix[index])
        ]
        assert matches
        used.add(matches[0])
