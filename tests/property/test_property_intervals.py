"""Property-based tests for interval construction and the delta-method engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta_method import DeltaMethodModel, confidence_interval_from_moments
from repro.stats.intervals import clopper_pearson_interval, wald_interval, wilson_interval
from repro.stats.normal import normal_cdf, normal_quantile, two_sided_z

confidences = st.floats(min_value=0.01, max_value=0.99)
probabilities = st.floats(min_value=0.0, max_value=1.0)
deviations = st.floats(min_value=0.0, max_value=5.0)


@settings(max_examples=200, deadline=None)
@given(mean=st.floats(min_value=-2.0, max_value=3.0), deviation=deviations, confidence=confidences)
def test_interval_from_moments_is_well_formed(mean, deviation, confidence):
    interval = confidence_interval_from_moments(mean, deviation, confidence)
    assert 0.0 <= interval.lower <= interval.upper <= 1.0
    assert interval.confidence == confidence


@settings(max_examples=100, deadline=None)
@given(mean=probabilities, deviation=deviations, low=confidences, high=confidences)
def test_interval_width_monotone_in_confidence(mean, deviation, low, high):
    low, high = sorted((low, high))
    narrow = confidence_interval_from_moments(mean, deviation, low, clip_to_unit=False)
    wide = confidence_interval_from_moments(mean, deviation, high, clip_to_unit=False)
    assert wide.size >= narrow.size - 1e-12


@settings(max_examples=100, deadline=None)
@given(p=st.floats(min_value=0.001, max_value=0.999))
def test_normal_quantile_is_inverse_of_cdf(p):
    assert abs(normal_cdf(normal_quantile(p)) - p) < 1e-9


@settings(max_examples=100, deadline=None)
@given(confidence=confidences)
def test_two_sided_z_consistent_with_tail_mass(confidence):
    z = two_sided_z(confidence)
    # The mass inside [-z, z] equals the confidence level.
    assert abs((normal_cdf(z) - normal_cdf(-z)) - confidence) < 1e-9


@settings(max_examples=150, deadline=None)
@given(
    successes=st.integers(min_value=0, max_value=200),
    extra=st.integers(min_value=1, max_value=300),
    confidence=confidences,
)
def test_binomial_intervals_contain_point_estimate(successes, extra, confidence):
    trials = successes + extra
    for interval_fn in (wald_interval, wilson_interval, clopper_pearson_interval):
        interval = interval_fn(successes, trials, confidence)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0
        assert interval.lower - 1e-9 <= successes / trials <= interval.upper + 1e-9


@settings(max_examples=150, deadline=None)
@given(
    gradient=st.lists(st.floats(min_value=-3.0, max_value=3.0), min_size=1, max_size=5),
    scale=st.floats(min_value=0.0, max_value=2.0),
    confidence=confidences,
)
def test_delta_method_variance_nonnegative(gradient, scale, confidence):
    gradient_array = np.asarray(gradient)
    k = gradient_array.size
    base = np.random.default_rng(0).normal(size=(k, k))
    covariance = scale * (base @ base.T)  # PSD by construction
    model = DeltaMethodModel(value=0.3, gradient=gradient_array, covariance=covariance)
    assert model.variance >= 0.0
    interval = model.interval(confidence)
    assert interval.lower <= interval.upper


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=1, max_size=6),
)
def test_linear_combination_with_uniform_weights_is_mean(values):
    values_array = np.asarray(values)
    n = values_array.size
    weights = np.full(n, 1.0 / n)
    model = DeltaMethodModel.linear_combination(values_array, weights, np.eye(n) * 0.01)
    assert abs(model.value - values_array.mean()) < 1e-12
