"""Cross-backend differential suite: every fast path must be bit-identical.

The library promises that its performance knobs never change results: the
``backend=`` choice (dict-of-dicts vs dense NumPy vs scipy.sparse CSR vs
packed-bitset low-memory), the batched per-triple stage
(``batch_triples=``), the grouped Lemma-4/5 aggregation (``batch_lemma4=``)
and the execution tiers behind ``shards=`` (process sharding over shared
memory, the thread tier, the ``"auto"`` cost model) are throughput features
only.  This suite enforces the promise end to end — every public entry
point is run under every applicable execution path (dict / dense-scalar /
dense-batched / batched-lemma4 / thread-tier / process-sharded over each
exportable backend / sparse / bitset) on randomized regular and
non-regular matrices, and the produced intervals, weights and statuses are
compared for *exact* floating-point equality against the original
dict-of-dicts reference.

Any future fast path should be added to :data:`EVALUATE_ALL_PATHS` and
:data:`TRIPLE_SCOPED_BACKENDS` (or the entry-point-specific lists below)
to inherit the same lockdown.  The suite also pins the composition
contracts: every vectorized backend — dense, sparse *and* bitset — shards
through the shared-state export protocol, only the dict path (no backend)
falls back to serial for ``shards=``, and a ``backend="sparse"`` request
degrades to a scipy-free backend with identical results when scipy is
absent.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.data.sparse_backend as sparse_backend_module
from repro.core.estimator import WorkerEvaluator
from repro.core.incremental import IncrementalEvaluator
from repro.core.kary import KaryEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.core.spammer_filter import filter_spammers
from repro.core.three_worker import evaluate_three_workers
from repro.data.response_matrix import ResponseMatrix

# --------------------------------------------------------------------------- #
# Matrix generators
# --------------------------------------------------------------------------- #


def random_matrix(
    seed: int,
    n_workers: int,
    n_tasks: int,
    arity: int = 2,
    regular: bool = False,
    spammers: int = 0,
) -> ResponseMatrix:
    """Randomized response matrix with controllable regularity.

    Regular data: every worker answers every task.  Non-regular data: each
    worker answers a random subset (with densities drawn per worker, so
    overlaps vary widely).  ``spammers`` workers answer uniformly at random
    regardless of the planted truth.
    """
    rng = np.random.default_rng(seed)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    truth = rng.integers(0, arity, size=n_tasks)
    error_rates = rng.uniform(0.05, 0.35, size=n_workers)
    densities = (
        np.ones(n_workers)
        if regular
        else rng.uniform(0.35, 0.95, size=n_workers)
    )
    for worker in range(n_workers):
        attempted = rng.random(n_tasks) < densities[worker]
        for task in np.nonzero(attempted)[0]:
            task = int(task)
            if worker < spammers:
                label = int(rng.integers(0, arity))
            elif rng.random() < error_rates[worker]:
                label = int((truth[task] + 1 + rng.integers(0, arity - 1)) % arity)
            else:
                label = int(truth[task])
            matrix.add_response(worker, task, label)
    return matrix


MATRIX_CASES = [
    # (seed, n_workers, n_tasks, regular)
    (101, 8, 60, True),
    (102, 11, 45, True),
    (103, 9, 70, False),
    (104, 14, 40, False),
    (105, 7, 90, False),
]

# --------------------------------------------------------------------------- #
# Execution paths and equality helpers
# --------------------------------------------------------------------------- #

#: Execution paths for binary batch evaluation.  "dict" is the reference the
#: others are compared against.
EVALUATE_ALL_PATHS: dict[str, dict] = {
    "dict": {"backend": "dict"},
    "dense-scalar": {
        "backend": "dense", "batch_triples": False, "batch_lemma4": False,
    },
    "dense-batched": {
        "backend": "dense", "batch_triples": True, "batch_lemma4": False,
    },
    "batched-lemma4": {
        "backend": "dense", "batch_triples": True, "batch_lemma4": True,
    },
    "sharded": {
        "backend": "dense",
        "batch_triples": True,
        "batch_lemma4": True,
        "shards": 2,
    },
    "thread-tier": {
        "backend": "dense",
        "batch_triples": True,
        "batch_lemma4": True,
        "shards": "thread:2",
    },
    "sparse": {
        "backend": "sparse", "batch_triples": True, "batch_lemma4": True,
    },
    "bitset": {
        "backend": "bitset", "batch_triples": True, "batch_lemma4": True,
    },
    "sparse-sharded": {
        "backend": "sparse",
        "batch_triples": True,
        "batch_lemma4": True,
        "shards": 2,
    },
    "bitset-sharded": {
        "backend": "bitset",
        "batch_triples": True,
        "batch_lemma4": True,
        "shards": 2,
    },
}

#: The process-pool columns are slow to spin up; the grid test exercises
#: them on a subset of cases (the in-process columns run everywhere).
PROCESS_POOL_PATHS = frozenset({"sharded", "sparse-sharded", "bitset-sharded"})

#: Backends exercised on the triple-scoped entry points (Algorithm A1/A3,
#: the spammer filter, incremental evaluation); "dict" is the reference.
TRIPLE_SCOPED_BACKENDS = ["dense", "sparse", "bitset"]


def assert_estimates_bit_identical(reference, candidate, path: str) -> None:
    assert candidate.worker == reference.worker, path
    assert candidate.n_tasks == reference.n_tasks, path
    assert candidate.interval.mean == reference.interval.mean, path
    assert candidate.interval.lower == reference.interval.lower, path
    assert candidate.interval.upper == reference.interval.upper, path
    assert candidate.interval.deviation == reference.interval.deviation, path
    assert candidate.weights == reference.weights, path
    assert candidate.status is reference.status, path
    assert len(candidate.triples) == len(reference.triples), path
    for triple_a, triple_b in zip(reference.triples, candidate.triples):
        assert triple_b.partners == triple_a.partners, path
        assert triple_b.error_rate == triple_a.error_rate, path
        assert triple_b.deviation == triple_a.deviation, path
        assert triple_b.derivatives == triple_a.derivatives, path
        assert triple_b.status is triple_a.status, path


# --------------------------------------------------------------------------- #
# evaluate_all under every path
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed,m,n,regular", MATRIX_CASES)
@pytest.mark.parametrize("optimize_weights", [True, False])
def test_evaluate_all_paths_bit_identical(seed, m, n, regular, optimize_weights):
    matrix = random_matrix(seed, m, n, regular=regular)
    reference = MWorkerEstimator(
        confidence=0.9, optimize_weights=optimize_weights, **EVALUATE_ALL_PATHS["dict"]
    ).evaluate_all(matrix)
    # The process-pool paths are slow to spin up (the executor's cached
    # pool amortizes the spawn, but each call still pays the export);
    # exercise them on a subset of the grid (one regular and one
    # non-regular matrix) and the in-process paths everywhere.
    shard_this_case = optimize_weights and seed in (101, 104)
    for path, config in EVALUATE_ALL_PATHS.items():
        if path == "dict" or (path in PROCESS_POOL_PATHS and not shard_this_case):
            continue
        candidate = MWorkerEstimator(
            confidence=0.9, optimize_weights=optimize_weights, **config
        ).evaluate_all(matrix)
        assert len(candidate) == len(reference) == m, path
        for ref, cand in zip(reference, candidate):
            assert_estimates_bit_identical(ref, cand, path)


def test_evaluate_all_sparse_degenerate_paths_bit_identical():
    """Workers with 0/1 usable partners and empty rows across all paths."""
    matrix = random_matrix(106, 10, 30, regular=False)
    # Add a silent worker and a worker overlapping almost nobody.
    sparse = ResponseMatrix(n_workers=12, n_tasks=31, arity=2)
    for worker, task, label in matrix.iter_responses():
        sparse.add_response(worker, task, label)
    sparse.add_response(10, 30, 1)  # answers only a task nobody else did
    reference = MWorkerEstimator(confidence=0.85, backend="dict").evaluate_all(sparse)
    for path, config in EVALUATE_ALL_PATHS.items():
        if path == "dict":
            continue
        candidate = MWorkerEstimator(confidence=0.85, **config).evaluate_all(sparse)
        for ref, cand in zip(reference, candidate):
            assert_estimates_bit_identical(ref, cand, path)


# --------------------------------------------------------------------------- #
# WorkerEvaluator.evaluate_binary (the library facade, with/without the
# spammer filter in front)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", TRIPLE_SCOPED_BACKENDS)
@pytest.mark.parametrize("remove_spammers", [False, True])
def test_evaluate_binary_paths_bit_identical(backend, remove_spammers):
    matrix = random_matrix(303, 10, 50, regular=False, spammers=3)
    reference = WorkerEvaluator(
        confidence=0.9, backend="dict", remove_spammers=remove_spammers
    ).evaluate_binary(matrix)
    candidate = WorkerEvaluator(
        confidence=0.9, backend=backend, remove_spammers=remove_spammers
    ).evaluate_binary(matrix)
    assert set(candidate) == set(reference), backend
    for worker, ref in reference.items():
        assert_estimates_bit_identical(ref, candidate[worker], backend)


# --------------------------------------------------------------------------- #
# evaluate_three_workers (Algorithm A1)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", TRIPLE_SCOPED_BACKENDS)
@pytest.mark.parametrize("seed,regular", [(201, True), (202, False), (203, False)])
def test_three_worker_paths_bit_identical(seed, regular, backend):
    matrix = random_matrix(seed, 3, 80, regular=regular)
    reference = evaluate_three_workers(matrix, confidence=0.9, backend="dict")
    candidate = evaluate_three_workers(matrix, confidence=0.9, backend=backend)
    for ref, cand in zip(reference, candidate):
        assert_estimates_bit_identical(ref, cand, backend)


# --------------------------------------------------------------------------- #
# filter_spammers
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("shards", [1, "thread:3", 4])
@pytest.mark.parametrize("backend", TRIPLE_SCOPED_BACKENDS)
@pytest.mark.parametrize("seed,regular", [(301, True), (302, False)])
def test_filter_spammers_paths_identical(seed, regular, backend, shards):
    # Every shards spec (including the process grammar, which the filter
    # documents as running thread-chunked) must reproduce the serial dict
    # reference exactly on every backend.
    matrix = random_matrix(seed, 10, 50, regular=regular, spammers=3)
    reference = filter_spammers(matrix, backend="dict")
    candidate = filter_spammers(matrix, backend=backend, shards=shards)
    assert candidate.kept_workers == reference.kept_workers
    assert candidate.removed_workers == reference.removed_workers
    assert candidate.approximate_error_rates == reference.approximate_error_rates
    assert candidate.filtered == reference.filtered


# --------------------------------------------------------------------------- #
# k-ary estimation (Algorithm A3)
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("shards", [1, "auto", 2])
@pytest.mark.parametrize("backend", TRIPLE_SCOPED_BACKENDS)
@pytest.mark.parametrize("seed,arity,regular", [(401, 3, True), (402, 4, False)])
def test_kary_paths_bit_identical(seed, arity, regular, backend, shards):
    # The k-ary estimator accepts every shards spec and always evaluates
    # serially (one triple, no worker loop) — results must be unaffected.
    matrix = random_matrix(seed, 5, 150, arity=arity, regular=regular)
    reference = KaryEstimator(confidence=0.9, backend="dict").evaluate(
        matrix, workers=(0, 1, 2)
    )
    candidate = KaryEstimator(
        confidence=0.9, backend=backend, shards=shards
    ).evaluate(matrix, workers=(0, 1, 2))
    for ref, cand in zip(reference, candidate):
        assert cand.worker == ref.worker
        assert cand.status is ref.status
        assert set(cand.entries) == set(ref.entries)
        for key, entry in ref.entries.items():
            other = cand.entries[key]
            assert other.interval.mean == entry.interval.mean
            assert other.interval.lower == entry.interval.lower
            assert other.interval.upper == entry.interval.upper
            assert other.interval.deviation == entry.interval.deviation


# --------------------------------------------------------------------------- #
# Incremental evaluation
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["dict", "dense", "sparse", "bitset"])
@pytest.mark.parametrize("seed,regular", [(501, True), (502, False)])
def test_incremental_matches_dict_reference(backend, seed, regular):
    """Streamed estimates equal the dict-backend batch reference exactly.

    This pins two properties at once: the incremental evaluator equals a
    fresh batch run over the accumulated data, and that batch run is itself
    backend-independent (the dense incremental path goes through the batched
    triple stage).
    """
    matrix = random_matrix(seed, 8, 45, regular=regular)
    incremental = IncrementalEvaluator(
        matrix.n_workers, matrix.n_tasks, confidence=0.9, backend=backend
    )
    records = list(matrix.iter_responses())
    split = len(records) // 2
    incremental.add_responses(records[:split])
    incremental.estimate_all()  # warm the cache mid-stream
    incremental.add_responses(records[split:])
    streamed = incremental.estimate_all()
    reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(matrix)
    for ref in reference:
        if ref.n_tasks == 0:
            assert ref.worker not in streamed
            continue
        assert_estimates_bit_identical(ref, streamed[ref.worker], backend)


# --------------------------------------------------------------------------- #
# Streamed column: random micro-batch interleavings through StreamSession
# --------------------------------------------------------------------------- #

#: Backends of the ``streamed`` column; every one must serve estimates
#: bit-identical to the dict-backend batch reference after ANY chopping of
#: the stream into micro-batches (the streaming determinism contract of
#: :mod:`repro.serve`).
STREAMED_BACKENDS = ["dict", "dense", "sparse", "bitset"]


@pytest.mark.parametrize("seed", range(25))
def test_streamed_microbatch_interleavings_bit_identical(seed):
    """25-seed fuzz of the streaming path: shuffled response streams with
    label revisions, chopped into random micro-batches by the session's
    coalescing queue, with cache-warming reads interleaved at random
    points, on all four backends — the final estimates must equal a
    from-scratch batch build over the accumulated matrix, bit for bit."""
    import asyncio

    from repro.serve import StreamSession

    rng = np.random.default_rng(9000 + seed)
    m = int(rng.integers(6, 10))
    n = int(rng.integers(25, 45))
    matrix = random_matrix(seed, m, n, regular=bool(seed % 3 == 0))
    records = list(matrix.iter_responses())
    rng.shuffle(records)
    # Revisions: re-submit a handful of cells with flipped labels mid-stream
    # (the accumulated matrix keeps the last write, like the reference).
    revisions = [
        (worker, task, 1 - label)
        for worker, task, label in rng.permutation(records)[:4].tolist()
    ]
    insert_at = sorted(
        int(position) for position in rng.integers(0, len(records), size=4)
    )
    for position, revision in zip(insert_at, reversed(revisions)):
        records.insert(position, tuple(revision))
    read_points = set(
        int(position) for position in rng.integers(0, len(records), size=2)
    )
    max_batch = int(rng.integers(1, 24))

    async def stream(backend):
        async with StreamSession(backend=backend, max_batch=max_batch) as session:
            for index, record in enumerate(records):
                await session.submit(*record)
                if index in read_points:
                    await session.evaluate_all()  # warm caches mid-stream
            await session.flush()
            return await session.evaluate_all(), session.evaluator.matrix.copy()

    results = {
        backend: asyncio.run(stream(backend)) for backend in STREAMED_BACKENDS
    }
    accumulated = results["dict"][1]
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(
            confidence=0.95, backend="dict"
        ).evaluate_all(accumulated)
        if estimate.n_tasks > 0
    }
    for backend, (streamed, matrix_copy) in results.items():
        assert matrix_copy == accumulated, backend
        assert set(streamed) == set(reference), backend
        for worker, ref in reference.items():
            assert_estimates_bit_identical(
                ref, streamed[worker], f"streamed-{backend}"
            )


# --------------------------------------------------------------------------- #
# Streamed-sharded column: sharded incremental recomputes under live streams
# --------------------------------------------------------------------------- #

#: Backends of the ``streamed-sharded`` column.  The vectorized three run
#: their incremental recomputes through the execution tiers (dependency
#: footprints ship back per shard); "dict" rides along to pin the documented
#: observer fallback under a non-serial ``shards=`` spec.
STREAMED_SHARDED_BACKENDS = ["dict", "dense", "sparse", "bitset"]


@pytest.mark.parametrize("seed", range(25))
def test_streamed_sharded_sessions_bit_identical(seed):
    """25-seed fuzz of the sharded streaming path: shuffled streams with
    label revisions and mid-stream evaluations, served by sessions whose
    incremental recomputes run under ``shards="thread:2"`` (and
    ``"process:2"`` on a seed subset), on all four backends — estimates
    must equal the from-scratch dict batch build bit for bit.  A second
    leg replays the same stream with deterministic chopping through a
    ledger-mode and an observer-mode evaluator side by side and asserts
    the dependency ledger makes *identical invalidation decisions* to the
    legacy per-read observer, batch by batch."""
    import asyncio

    from repro.serve import StreamSession

    rng = np.random.default_rng(17000 + seed)
    m = int(rng.integers(6, 10))
    n = int(rng.integers(25, 45))
    matrix = random_matrix(seed, m, n, regular=bool(seed % 3 == 0))
    records = list(matrix.iter_responses())
    rng.shuffle(records)
    revisions = [
        (worker, task, 1 - label)
        for worker, task, label in rng.permutation(records)[:4].tolist()
    ]
    insert_at = sorted(
        int(position) for position in rng.integers(0, len(records), size=4)
    )
    for position, revision in zip(insert_at, reversed(revisions)):
        records.insert(position, tuple(revision))
    read_points = set(
        int(position) for position in rng.integers(0, len(records), size=2)
    )
    max_batch = int(rng.integers(1, 24))
    # The process pool is slow to spin up; exercise the process tier on a
    # seed subset and the thread tier everywhere.
    shards = "process:2" if seed % 8 == 3 else "thread:2"

    async def stream(backend):
        async with StreamSession(
            backend=backend, max_batch=max_batch, shards=shards
        ) as session:
            for index, record in enumerate(records):
                await session.submit(*record)
                if index in read_points:
                    await session.evaluate_all()  # sharded recompute mid-stream
            await session.flush()
            return await session.evaluate_all(), session.evaluator.matrix.copy()

    results = {
        backend: asyncio.run(stream(backend))
        for backend in STREAMED_SHARDED_BACKENDS
    }
    accumulated = results["dict"][1]
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(
            confidence=0.95, backend="dict"
        ).evaluate_all(accumulated)
        if estimate.n_tasks > 0
    }
    for backend, (streamed, matrix_copy) in results.items():
        assert matrix_copy == accumulated, backend
        assert set(streamed) == set(reference), backend
        for worker, ref in reference.items():
            assert_estimates_bit_identical(
                ref, streamed[worker], f"streamed-sharded-{backend}"
            )

    # Ledger-equivalence leg: identical invalidation decisions, per batch.
    # Both evaluators start at the minimal dimensions and grow with the
    # stream, so the equivalence also covers worker/task growth (where the
    # endpoint rule is what keeps a pre-growth cache from going stale).
    ledger_mode = IncrementalEvaluator(
        3, 1, confidence=0.95, backend="dense", shards=shards
    )
    observer_mode = IncrementalEvaluator(
        3, 1, confidence=0.95, backend="dense",
        dependency_tracking="observer",
    )
    assert ledger_mode._use_ledger() and not observer_mode._use_ledger()
    for index, start in enumerate(range(0, len(records), max_batch)):
        batch = records[start : start + max_batch]
        ledger_stats = ledger_mode.apply_batch(batch)
        observer_stats = observer_mode.apply_batch(batch)
        assert ledger_stats.invalidated == observer_stats.invalidated, (
            f"seed {seed} batch {index}: ledger invalidation diverged from "
            "the observer reference"
        )
        assert (
            ledger_stats.cached_invalidated
            == observer_stats.cached_invalidated
        ), f"seed {seed} batch {index}"
        if index % 3 == seed % 3:  # warm both caches at the same boundaries
            via_ledger = ledger_mode.estimate_all()
            via_observer = observer_mode.estimate_all()
            assert set(via_ledger) == set(via_observer)
            for worker, estimate in via_observer.items():
                assert_estimates_bit_identical(
                    estimate, via_ledger[worker], "ledger-equivalence"
                )


# --------------------------------------------------------------------------- #
# Resumed column: kill/resume fuzz through the durable session layer
# --------------------------------------------------------------------------- #

#: Backends of the ``resumed`` column — the resume determinism contract of
#: :mod:`repro.serve.durable`: a session killed at an arbitrary point and
#: resumed from its WAL + snapshots must serve estimates bit-identical to
#: one that was never interrupted (== the dict batch reference, via the
#: streamed column's own lockdown).
RESUMED_BACKENDS = ["dict", "dense", "sparse", "bitset"]


@pytest.mark.parametrize("seed", range(25))
def test_resumed_sessions_bit_identical(seed, tmp_path):
    """25-seed kill/resume fuzz: a durable session is aborted at a random
    cut point (simulating SIGKILL), its on-disk state optionally mangled
    the way a crash would (WAL tail truncated mid-append, newest snapshot
    corrupted mid-write), resumed, and fed the rest of the stream — the
    final estimates, spammer scores and accumulated matrix must equal the
    uninterrupted reference bit for bit, on all four backends, across
    snapshot cadences including pure WAL replay."""
    import asyncio

    from repro.serve import StreamSession

    rng = np.random.default_rng(13000 + seed)
    m = int(rng.integers(6, 10))
    n = int(rng.integers(25, 45))
    matrix = random_matrix(seed, m, n, regular=bool(seed % 3 == 0))
    records = list(matrix.iter_responses())
    rng.shuffle(records)
    # Label revisions land on both sides of the kill point: last write must
    # win across the crash exactly as it does within one process.
    revisions = [
        (worker, task, 1 - label)
        for worker, task, label in rng.permutation(records)[:4].tolist()
    ]
    insert_at = sorted(
        int(position) for position in rng.integers(0, len(records), size=4)
    )
    for position, revision in zip(insert_at, reversed(revisions)):
        records.insert(position, tuple(revision))
    max_batch = int(rng.integers(1, 24))
    cut = int(rng.integers(1, len(records)))
    snapshot_every = [None, 1, 2, 3, 5][seed % 5]
    corruption = seed % 3  # 0: clean kill, 1: torn WAL tail, 2: torn snapshot

    async def crash_then_resume(backend, directory):
        session = StreamSession(
            backend=backend,
            max_batch=max_batch,
            durable=directory,
            snapshot_every=snapshot_every,
            fsync=False,
        )
        session.start()
        for record in records[:cut]:
            await session.submit(*record)
        await session.flush()
        await session.abort()  # no final snapshot, applier cancelled
        if corruption == 1:
            # Mid-append kill: the last WAL record loses its tail bytes.
            wal = session.durable.wal_path
            data = wal.read_bytes()
            wal.write_bytes(data[: len(data) - int(rng.integers(1, 31))])
        elif corruption == 2:
            # Mid-snapshot kill / torn storage: flip a byte in the newest
            # snapshot — resume must fall back to an older one or pure WAL.
            snapshots = session.durable.snapshot_paths()
            if snapshots:
                data = bytearray(snapshots[0].read_bytes())
                data[int(rng.integers(0, len(data)))] ^= 0xFF
                snapshots[0].write_bytes(bytes(data))
        resumed = StreamSession.resume(
            directory,
            backend=backend,
            max_batch=max_batch,
            snapshot_every=snapshot_every,
            fsync=False,
        )
        # Sequence numbers are positional, so applied_events says exactly
        # which prefix of the stream survived; feed the rest.
        assert resumed.applied_events <= len(records)
        async with resumed:
            for record in records[resumed.applied_events :]:
                await resumed.submit(*record)
            await resumed.flush()
            estimates = await resumed.evaluate_all()
            scores = await resumed.spammer_scores()
            return estimates, scores, resumed.evaluator.matrix.copy()

    results = {
        backend: asyncio.run(
            crash_then_resume(backend, tmp_path / backend)
        )
        for backend in RESUMED_BACKENDS
    }
    accumulated = results["dict"][2]
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(
            confidence=0.95, backend="dict"
        ).evaluate_all(accumulated)
        if estimate.n_tasks > 0
    }
    reference_scores = results["dict"][1]
    for backend, (resumed, scores, matrix_copy) in results.items():
        assert matrix_copy == accumulated, backend
        assert set(resumed) == set(reference), backend
        for worker, ref in reference.items():
            assert_estimates_bit_identical(
                ref, resumed[worker], f"resumed-{backend}"
            )
        assert scores == reference_scores, backend


# --------------------------------------------------------------------------- #
# Multi-writer resumed column: partitioned kill/resume fuzz
# --------------------------------------------------------------------------- #

#: Backends of the ``multiwriter-resumed`` column — the multi-writer
#: determinism contract of :mod:`repro.serve.multiwriter`: a partitioned
#: durable session killed at an arbitrary point (including mid-flight, with
#: unflushed queues), its segments independently tail-corrupted, resumed
#: via the k-way segment merge and fed the rest of the stream must serve
#: estimates bit-identical to the serial dict batch build.
MULTIWRITER_RESUMED_BACKENDS = ["dict", "dense", "sparse", "bitset"]


@pytest.mark.parametrize("seed", range(25))
def test_multiwriter_resumed_sessions_bit_identical(seed, tmp_path):
    """25-seed kill/resume fuzz of the multi-writer ingest path: random
    writer counts (1-4, through the ``open_session`` front door so the
    single-writer dispatch is fuzzed too), random kill points — half the
    seeds abort with queues still unflushed — per-segment WAL tail
    corruption or a torn newest snapshot, resume via the segment merge,
    then drain the remainder of the stream.  The final estimates, spammer
    scores and accumulated matrix must equal the serial uninterrupted
    reference bit for bit on all four backends, across snapshot cadences
    including pure segment replay."""
    import asyncio

    from repro.serve import SessionConfig, open_session

    rng = np.random.default_rng(14000 + seed)
    m = int(rng.integers(6, 10))
    n = int(rng.integers(25, 45))
    matrix = random_matrix(seed, m, n, regular=bool(seed % 3 == 0))
    records = list(matrix.iter_responses())
    rng.shuffle(records)
    revisions = [
        (worker, task, 1 - label)
        for worker, task, label in rng.permutation(records)[:4].tolist()
    ]
    insert_at = sorted(
        int(position) for position in rng.integers(0, len(records), size=4)
    )
    for position, revision in zip(insert_at, reversed(revisions)):
        records.insert(position, tuple(revision))
    max_batch = int(rng.integers(1, 24))
    cut = int(rng.integers(1, len(records)))
    writers = 1 + seed % 4
    snapshot_every = [None, 1, 2, 3, 5][seed % 5]
    corruption = seed % 3  # 0: clean kill, 1: torn segment tail, 2: torn snapshot
    flushed = seed % 2 == 0  # else: killed with queues still unflushed

    async def crash_then_resume(backend, directory):
        config = SessionConfig(
            backend=backend,
            max_batch=max_batch,
            writers=writers,
            durable=directory,
            snapshot_every=snapshot_every,
            fsync=False,
        )
        session = open_session(config)
        session.start()
        for record in records[:cut]:
            await session.submit(*record)
        if flushed:
            await session.flush()
        await session.abort()  # no final snapshot, appliers cancelled
        if corruption == 1:
            # Mid-append kill: the fattest segment loses its tail bytes
            # (the glob covers both the wal-<p>.ndjson segments and the
            # single-writer wal.ndjson).  Leave the header plus a margin
            # intact — a chopped *header* is a malformed log, not crash
            # residue, and resume is right to refuse it.
            wal = max(directory.glob("wal*.ndjson"), key=lambda p: p.stat().st_size)
            size = wal.stat().st_size
            if size > 90:
                chop = int(rng.integers(1, min(31, size - 80)))
                wal.write_bytes(wal.read_bytes()[: size - chop])
        elif corruption == 2:
            # Torn newest snapshot: resume must fall back to an older one
            # or pure segment replay.
            snapshots = sorted(directory.glob("snapshot-*.snap"), reverse=True)
            if snapshots:
                data = bytearray(snapshots[0].read_bytes())
                data[int(rng.integers(0, len(data)))] ^= 0xFF
                snapshots[0].write_bytes(bytes(data))
        resumed = open_session(config)
        assert resumed.applied_events <= len(records)
        async with resumed:
            if flushed and corruption == 0:
                # Every submitted event reached the segments and survived:
                # the resume must account for exactly the prefix, and the
                # exact remainder completes the stream.
                assert resumed.applied_events == cut
                remainder = records[cut:]
            else:
                # Unflushed batches (or chopped tails) vanished, and which
                # partition lost how much is timing-dependent — so re-feed
                # the whole stream: per-worker last-write-wins application
                # makes the overlap idempotent.
                remainder = records
            for record in remainder:
                await resumed.submit(*record)
            await resumed.flush()
            estimates = await resumed.evaluate_all()
            scores = await resumed.spammer_scores()
            return estimates, scores, resumed.evaluator.matrix.copy()

    results = {
        backend: asyncio.run(
            crash_then_resume(backend, tmp_path / backend)
        )
        for backend in MULTIWRITER_RESUMED_BACKENDS
    }
    accumulated = results["dict"][2]
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(
            confidence=0.95, backend="dict"
        ).evaluate_all(accumulated)
        if estimate.n_tasks > 0
    }
    reference_scores = results["dict"][1]
    for backend, (resumed, scores, matrix_copy) in results.items():
        assert matrix_copy == accumulated, backend
        assert set(resumed) == set(reference), backend
        for worker, ref in reference.items():
            assert_estimates_bit_identical(
                ref, resumed[worker], f"multiwriter-resumed-{backend}"
            )
        assert scores == reference_scores, backend


# --------------------------------------------------------------------------- #
# Composition contracts of the sparse/bitset backends
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("shards", [4, "thread:2", "auto"])
def test_shards_with_dict_backend_falls_back_to_serial(shards, monkeypatch):
    """``shards=`` composes with the dict backend via the documented serial
    fallback: it is the only backend without a vectorized dense view, so no
    execution tier may engage and results must still equal the reference.

    (Sparse and bitset now export shared state and genuinely shard — their
    bit-identity is covered by the sparse-sharded/bitset-sharded columns of
    the path matrix above.)"""
    import repro.core.parallel as parallel_module

    def _forbidden(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(f"no tier may engage for dict + shards={shards!r}")

    monkeypatch.setattr(parallel_module, "evaluate_all_process", _forbidden)
    monkeypatch.setattr(parallel_module, "evaluate_all_threaded", _forbidden)
    matrix = random_matrix(104, 14, 40, regular=False)
    reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(matrix)
    candidate = MWorkerEstimator(
        confidence=0.9, backend="dict", shards=shards
    ).evaluate_all(matrix)
    for ref, cand in zip(reference, candidate):
        assert_estimates_bit_identical(ref, cand, f"dict+shards={shards!r}")


def test_sparse_request_degrades_gracefully_without_scipy(monkeypatch):
    """``backend="sparse"`` without scipy must not fail: it resolves to a
    scipy-free backend serving identical counts, so every result equals the
    dict reference bit for bit."""
    monkeypatch.setattr(sparse_backend_module, "_SCIPY_OVERRIDE", False)
    matrix = random_matrix(105, 7, 90, regular=False)
    reference = MWorkerEstimator(confidence=0.9, backend="dict").evaluate_all(matrix)
    candidate = MWorkerEstimator(confidence=0.9, backend="sparse").evaluate_all(matrix)
    for ref, cand in zip(reference, candidate):
        assert_estimates_bit_identical(ref, cand, "sparse-degraded")
    spammers = random_matrix(301, 10, 50, regular=False, spammers=3)
    assert (
        filter_spammers(spammers, backend="sparse").approximate_error_rates
        == filter_spammers(spammers, backend="dict").approximate_error_rates
    )
