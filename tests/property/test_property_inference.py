"""Property-based tests for label inference and the new baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines.karger_oh_shah import karger_oh_shah
from repro.baselines.majority_vote import majority_vote_labels
from repro.core.task_inference import infer_binary_labels, infer_kary_labels
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import BinaryWorkerPopulation
from repro.simulation.kary import KaryWorkerPopulation, sample_confusion_matrices


@st.composite
def binary_crowd(draw):
    """A random binary crowd with workers of random (non-malicious) quality."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_workers = draw(st.integers(min_value=3, max_value=6))
    n_tasks = draw(st.integers(min_value=10, max_value=60))
    rng = np.random.default_rng(seed)
    error_rates = rng.uniform(0.02, 0.4, size=n_workers)
    population = BinaryWorkerPopulation(error_rates=error_rates)
    matrix = population.generate(n_tasks, rng, densities=draw(
        st.sampled_from([0.6, 0.8, 1.0])
    ))
    return matrix, error_rates


@settings(max_examples=25, deadline=None)
@given(data=binary_crowd())
def test_inferred_labels_are_valid_and_cover_answered_tasks(data):
    matrix, error_rates = data
    estimates = {worker: float(rate) for worker, rate in enumerate(error_rates)}
    labels = infer_binary_labels(matrix, estimates)
    answered = {task for task in range(matrix.n_tasks) if matrix.task_responses(task)}
    assert set(labels) == answered
    assert all(label in (0, 1) for label in labels.values())


@settings(max_examples=25, deadline=None)
@given(data=binary_crowd())
def test_equal_error_rates_reduce_to_majority_vote(data):
    matrix, _ = data
    uniform_estimates = {worker: 0.2 for worker in range(matrix.n_workers)}
    weighted = infer_binary_labels(matrix, uniform_estimates)
    majority = majority_vote_labels(matrix)
    # On tasks without ties the two rules must agree (ties may be broken
    # differently by the prior, so only non-tied tasks are compared).
    for task, label in weighted.items():
        votes = list(matrix.task_responses(task).values())
        ones = sum(votes)
        zeros = len(votes) - ones
        if ones != zeros:
            assert label == majority[task]


@settings(max_examples=25, deadline=None)
@given(data=binary_crowd())
def test_kos_labels_cover_all_answered_tasks(data):
    matrix, _ = data
    result = karger_oh_shah(matrix)
    answered = {task for task in range(matrix.n_tasks) if matrix.task_responses(task)}
    assert set(result.labels) == answered
    assert all(-1.0 <= score <= 1.0 for score in result.worker_scores.values())


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    arity=st.integers(min_value=2, max_value=4),
    n_tasks=st.integers(min_value=20, max_value=80),
)
def test_kary_inference_with_true_matrices_beats_chance(seed, arity, n_tasks):
    rng = np.random.default_rng(seed)
    confusions = sample_confusion_matrices(3, arity, rng)
    population = KaryWorkerPopulation(confusion_matrices=confusions)
    matrix = population.generate(n_tasks, rng)
    labels = infer_kary_labels(matrix, dict(enumerate(confusions)))
    correct = sum(
        1 for task, gold in matrix.gold_labels.items() if labels.get(task) == gold
    )
    assume(len(labels) > 10)
    assert correct / len(labels) > 1.0 / arity


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    flip_worker=st.integers(min_value=0, max_value=2),
)
def test_inference_is_invariant_to_estimate_scaling_of_other_workers(seed, flip_worker):
    """Making one worker's error estimate slightly better or worse must not
    change labels on tasks that worker did not answer."""
    rng = np.random.default_rng(seed)
    population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
    matrix = population.generate(40, rng, densities=0.6)
    base = {0: 0.1, 1: 0.2, 2: 0.3}
    perturbed = dict(base)
    perturbed[flip_worker] = min(0.45, base[flip_worker] + 0.1)
    labels_base = infer_binary_labels(matrix, base)
    labels_perturbed = infer_binary_labels(matrix, perturbed)
    untouched_tasks = [
        task for task in labels_base if flip_worker not in matrix.task_responses(task)
    ]
    for task in untouched_tasks:
        assert labels_base[task] == labels_perturbed[task]
