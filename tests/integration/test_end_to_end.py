"""End-to-end integration tests: statistical behaviour across modules.

These tests exercise whole pipelines (simulation -> estimation -> coverage
measurement) at a reduced scale and assert the qualitative properties the
paper's figures report.  They are slower than the unit tests but still run in
seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.old_technique import OldTechniqueEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.coverage import binary_coverage, dataset_coverage, kary_coverage
from repro.simulation.binary import simulate_binary_responses
from repro.simulation.density import per_worker_density_ramp
from repro.types import EstimateStatus


class TestBinaryPipeline:
    def test_coverage_tracks_confidence_level(self, rng):
        """Interval-accuracy rises with the confidence level and stays near it
        (the Fig 2(a) property)."""
        accuracies = {}
        for confidence in (0.5, 0.8, 0.95):
            result = binary_coverage(
                n_workers=5, n_tasks=150, confidence=confidence, rng=rng,
                density=0.8, n_repetitions=60,
            )
            accuracies[confidence] = result.accuracy
        assert accuracies[0.5] < accuracies[0.95]
        for confidence, accuracy in accuracies.items():
            assert accuracy >= confidence - 0.12
        assert accuracies[0.95] <= 1.0

    def test_interval_size_decreases_with_density(self, rng):
        """The Fig 2(b) property at a reduced scale."""
        sizes = []
        for density in (0.5, 0.7, 0.9):
            result = binary_coverage(
                n_workers=7, n_tasks=100, confidence=0.8, rng=rng,
                density=density, n_repetitions=40,
            )
            sizes.append(result.mean_size)
        assert sizes[0] > sizes[1] > sizes[2]

    def test_weight_optimization_reduces_interval_size(self, rng):
        """The Fig 2(c) property at a reduced scale."""
        densities = per_worker_density_ramp(7)
        optimized = binary_coverage(
            n_workers=7, n_tasks=100, confidence=0.8, rng=rng,
            density=densities, n_repetitions=40, optimize_weights=True,
        )
        uniform = binary_coverage(
            n_workers=7, n_tasks=100, confidence=0.8, rng=rng,
            density=densities, n_repetitions=40, optimize_weights=False,
        )
        assert optimized.mean_size < uniform.mean_size

    def test_new_technique_tighter_than_old_at_same_coverage(self, rng):
        """The Fig 1 property: the paper's intervals are tighter than the
        conservative super-worker baseline while still covering the truth."""
        new_sizes, old_sizes = [], []
        new_hits = old_hits = total = 0
        for _ in range(25):
            matrix, rates = simulate_binary_responses(5, 100, rng, density=1.0)
            new_estimates = MWorkerEstimator(confidence=0.8).evaluate_all(matrix)
            old_estimates = OldTechniqueEstimator(confidence=0.8).evaluate_all(matrix)
            for new, old in zip(new_estimates, old_estimates):
                total += 1
                new_sizes.append(new.interval.size)
                old_sizes.append(old.interval.size)
                new_hits += new.interval.contains(rates[new.worker])
                old_hits += old.interval.contains(rates[old.worker])
        assert np.mean(new_sizes) < np.mean(old_sizes)
        assert new_hits / total >= 0.7
        assert old_hits / total >= 0.7


class TestKaryPipeline:
    def test_coverage_reasonable_for_all_arities(self, rng):
        for arity in (2, 3, 4):
            result = kary_coverage(
                arity=arity, n_tasks=300, confidence=0.8, rng=rng, n_repetitions=8
            )
            assert result.accuracy >= 0.65, f"arity {arity} coverage too low"

    def test_interval_size_grows_with_arity(self, rng):
        sizes = {}
        for arity in (2, 4):
            result = kary_coverage(
                arity=arity, n_tasks=300, confidence=0.8, rng=rng, n_repetitions=8
            )
            sizes[arity] = result.mean_size
        assert sizes[4] > sizes[2]


class TestRealDataPipeline:
    def test_ic_standin_full_pipeline(self):
        from repro.data import load_dataset

        matrix = load_dataset("ic")
        plain = dataset_coverage(matrix, confidence=0.9)
        filtered = dataset_coverage(matrix, confidence=0.9, remove_spammers=True)
        assert plain.n_intervals >= 10
        assert 0.5 <= plain.accuracy <= 1.0
        assert filtered.accuracy >= plain.accuracy - 0.1

    def test_sparse_dataset_produces_mostly_usable_estimates(self):
        from repro.data import load_dataset

        matrix = load_dataset("tem")
        estimates = MWorkerEstimator(confidence=0.8).evaluate_all(matrix)
        usable = [e for e in estimates if e.status is not EstimateStatus.DEGENERATE]
        assert len(usable) >= 0.8 * len(estimates)
        for estimate in usable:
            assert 0.0 <= estimate.interval.lower <= estimate.interval.upper <= 1.0


class TestWorkflowDocumentedInReadme:
    def test_quickstart_code_path(self, rng):
        """The README / package-docstring quickstart runs as documented."""
        from repro import evaluate_workers
        from repro.simulation import simulate_binary_responses as simulate

        matrix, _ = simulate(n_workers=7, n_tasks=200, rng=rng, density=0.8)
        estimates = evaluate_workers(matrix, confidence=0.9)
        assert set(estimates) == set(range(7))
        interval = estimates[0].interval
        assert interval.lower <= interval.upper
