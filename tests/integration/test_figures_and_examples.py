"""Integration tests: figure-reproduction functions and example scripts.

The figure functions are exercised with tiny parameters (structure and basic
shape only — the benchmarks run them at meaningful scale); the example
scripts are executed as subprocesses to guarantee the documented entry points
keep working.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.evaluation.experiments import (
    figure1_old_vs_new,
    figure2a_accuracy,
    figure2b_density,
    figure2c_weight_optimization,
    figure3_real_data_accuracy,
    figure4_spammer_filtered_accuracy,
    figure5a_kary_accuracy,
    figure5b_kary_density,
    figure5c_kary_real_data,
)
from repro.evaluation.reporting import format_experiment

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
TINY_GRID = (0.5, 0.8)


class TestFigureFunctions:
    def test_fig1(self):
        result = figure1_old_vs_new(
            n_tasks=60, worker_counts=(3,), confidence_grid=TINY_GRID, n_repetitions=4
        )
        assert len(result.sweep.labels) == 2
        new = result.sweep.series["new technique, 3 workers"]
        old = result.sweep.series["old technique, 3 workers"]
        assert all(n <= o for (_, n), (_, o) in zip(new.points, old.points))

    def test_fig2a(self):
        result = figure2a_accuracy(
            configurations=((3, 60),), confidence_grid=TINY_GRID, n_repetitions=8
        )
        for _, accuracy in result.series["3 workers 60 tasks"]:
            assert 0.0 <= accuracy <= 1.0

    def test_fig2b(self):
        result = figure2b_density(
            configurations=((3, 80),), densities=(0.6, 0.9), n_repetitions=8
        )
        series = result.sweep.series["3 workers, 80 tasks"]
        assert series.y_at(0.9) < series.y_at(0.6)

    def test_fig2c(self):
        result = figure2c_weight_optimization(
            n_workers=7, n_tasks=60, confidence_grid=(0.8,), n_repetitions=8
        )
        assert result.sweep.series["with optimization"].y_at(0.8) <= (
            result.sweep.series["no optimization"].y_at(0.8)
        )

    def test_fig3_and_fig4(self):
        fig3 = figure3_real_data_accuracy(datasets=("ic",), confidence_grid=TINY_GRID)
        fig4 = figure4_spammer_filtered_accuracy(
            datasets=("ic",), confidence_grid=TINY_GRID
        )
        assert fig3.sweep.labels == ["Image Comparison"]
        assert fig4.sweep.labels == ["Image Comparison"]
        assert "stand-ins" in fig3.notes

    def test_fig5a(self):
        result = figure5a_kary_accuracy(
            arities=(2,), task_counts=(80,), confidence_grid=TINY_GRID, n_repetitions=4
        )
        for _, accuracy in result.series["arity 2, 80 tasks"]:
            assert 0.0 <= accuracy <= 1.0

    def test_fig5b(self):
        result = figure5b_kary_density(
            arities=(2,), densities=(0.6, 0.9), n_tasks=150, n_repetitions=4
        )
        series = result.sweep.series["arity 2"]
        assert series.y_at(0.9) < series.y_at(0.6)

    def test_fig5c(self):
        result = figure5c_kary_real_data(
            datasets=("ws",), confidence_grid=(0.8,), n_triples=4
        )
        assert "Wordsim arity 2" in result.sweep.labels

    def test_format_experiment_renders_every_figure(self):
        result = figure1_old_vs_new(
            n_tasks=40, worker_counts=(3,), confidence_grid=(0.8,), n_repetitions=2
        )
        text = format_experiment(result)
        assert "fig1" in text
        assert "confidence level" in text


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "worker_screening.py", "kary_peer_grading.py", "streaming_monitor.py"],
)
def test_example_scripts_run(script):
    """Each example executes successfully and prints something meaningful."""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert len(completed.stdout.splitlines()) > 5


def test_dataset_benchmark_example_importable():
    """The heavyweight example is at least importable and its helpers work."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "dataset_benchmarks", EXAMPLES_DIR / "dataset_benchmarks.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    from repro.data import load_dataset

    matrix = load_dataset("ic")
    truth = module.gold_truth(matrix)
    assert truth
    assert module.rmse({worker: 0.2 for worker in truth}, truth) >= 0.0
