"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import BinaryWorkerPopulation
from repro.simulation.kary import KaryWorkerPopulation, PAPER_CONFUSION_MATRICES


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_binary_matrix() -> ResponseMatrix:
    """A tiny hand-written binary matrix with three workers and gold labels.

    Worker 0 and 1 are mostly right; worker 2 flips several answers.
    """
    gold = [0, 1, 0, 1, 0, 1, 0, 1]
    responses = {
        0: [0, 1, 0, 1, 0, 1, 0, 1],   # perfect
        1: [0, 1, 0, 1, 0, 1, 1, 1],   # one mistake
        2: [1, 1, 0, 0, 0, 1, 1, 0],   # four mistakes
    }
    matrix = ResponseMatrix(n_workers=3, n_tasks=8, arity=2)
    for worker, labels in responses.items():
        for task, label in enumerate(labels):
            matrix.add_response(worker, task, label)
    matrix.set_gold_labels(gold)
    return matrix


@pytest.fixture
def non_regular_matrix() -> ResponseMatrix:
    """A 4-worker binary matrix where workers skip different tasks."""
    matrix = ResponseMatrix(n_workers=4, n_tasks=10, arity=2)
    gold = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1]
    patterns = {
        0: range(0, 8),
        1: range(2, 10),
        2: range(0, 10),
        3: range(1, 9),
    }
    flips = {0: set(), 1: {3}, 2: {0, 5}, 3: {2, 7}}
    for worker, tasks in patterns.items():
        for task in tasks:
            label = gold[task]
            if task in flips[worker]:
                label = 1 - label
            matrix.add_response(worker, task, label)
    matrix.set_gold_labels(gold)
    return matrix


@pytest.fixture
def simulated_binary(rng) -> tuple[ResponseMatrix, np.ndarray]:
    """A moderate simulated binary dataset with known error rates."""
    population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3, 0.15, 0.25]))
    matrix = population.generate(150, rng, densities=0.85)
    return matrix, population.error_rates


@pytest.fixture
def simulated_kary(rng) -> tuple[ResponseMatrix, list[np.ndarray]]:
    """A simulated 3-ary dataset with three workers and known confusion matrices."""
    matrices = [PAPER_CONFUSION_MATRICES[3][index].copy() for index in (0, 1, 2)]
    population = KaryWorkerPopulation(confusion_matrices=matrices)
    matrix = population.generate(400, rng, densities=0.9)
    return matrix, matrices
