"""Setuptools shim so the package installs in environments without PEP 660
support (no `wheel` package available); `pip install -e .` works offline via
`python setup.py develop` too.

scipy is deliberately an *extra* (``pip install repro-crowd[sparse]``): the
library is fully functional without it — the sparse agreement backend then
degrades gracefully to the scipy-free dense/bitset backends with identical
results (see ``repro.data.sparse_backend``) — and CI runs the differential
suite both with and without scipy installed to keep that degradation path
honest."""
from setuptools import find_packages, setup

setup(
    name="repro-crowd",
    version="1.0.0",  # keep in sync with repro.__version__
    description=(
        "Reproduction of Joglekar, Garcia-Molina & Parameswaran (ICDE 2015): "
        "confidence intervals on crowd-worker error rates"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # Enables repro.data.sparse_backend.SparseAgreementBackend (scipy
        # CSR pair-count products for very large sparse grids).
        "sparse": ["scipy"],
    },
    entry_points={"console_scripts": ["repro-crowd=repro.cli:main"]},
)
