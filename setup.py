"""Setuptools shim so the package installs in environments without PEP 660
support (no `wheel` package available); `pip install -e .` uses
pyproject.toml when it can, and `python setup.py develop` works offline."""
from setuptools import setup

setup()
