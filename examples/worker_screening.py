"""Worker screening: firing decisions with intervals vs point estimates.

The paper's introduction motivates confidence intervals with a staffing
problem: a worker who got 1 of 3 tasks wrong and a worker who got 10 of 30
wrong have the same point estimate (1/3), but only the second should be
fired with any confidence.  This example runs the hire/fire simulation from
:mod:`repro.workforce` under two policies:

* a point-estimate policy that fires whenever the estimated error rate
  exceeds the threshold, and
* the interval policy that fires only when the interval's lower bound
  exceeds the threshold.

The interval policy fires far fewer *good* workers while still weeding out
the bad ones.

Run with:  python examples/worker_screening.py
"""

from __future__ import annotations

import numpy as np

from repro.workforce import (
    IntervalFiringPolicy,
    PointEstimateFiringPolicy,
    simulate_worker_pool,
)

THRESHOLD = 0.25
ROUNDS = 6
SEED = 7


def run(policy, label: str, seed: int) -> None:
    rng = np.random.default_rng(seed)
    result = simulate_worker_pool(
        policy,
        rng,
        n_workers=9,
        tasks_per_round=80,
        n_rounds=ROUNDS,
        density=0.8,
        confidence=0.9,
        good_threshold=THRESHOLD,
    )
    print(f"{label}")
    print(f"  mean true error rate of final pool : {result.mean_final_error_rate:.3f}")
    print(f"  good workers wrongly fired         : {result.fired_good_workers}")
    print(f"  bad workers correctly fired        : {result.fired_bad_workers}")
    print(f"  pool quality per round             : "
          + ", ".join(f"{value:.3f}" for value in result.history))
    print()


def main() -> None:
    print(f"firing threshold: error rate > {THRESHOLD}, {ROUNDS} rounds\n")
    run(
        PointEstimateFiringPolicy(max_error_rate=THRESHOLD),
        "point-estimate policy (no confidence intervals)",
        SEED,
    )
    run(
        IntervalFiringPolicy(max_error_rate=THRESHOLD),
        "interval policy (fire only when the interval proves the worker is bad)",
        SEED,
    )
    print("The interval policy avoids firing good-but-unlucky workers — the cost "
          "the paper's introduction warns about — at a small price in how fast "
          "truly bad workers are removed.")


if __name__ == "__main__":
    main()
