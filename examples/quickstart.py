"""Quickstart: confidence intervals on worker error rates without gold labels.

The scenario mirrors the paper's introduction: a requester has a pool of
crowd workers who each answered *some* of a batch of binary tasks (non-regular
data), and wants to know each worker's error rate — with a guarantee, so that
a worker is only fired when the evidence is strong.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import evaluate_workers
from repro.simulation import simulate_binary_responses


def main() -> None:
    rng = np.random.default_rng(2026)

    # Simulate a small crowd: 7 workers, 200 binary tasks, each worker
    # answering ~80% of the tasks.  True error rates are drawn from the
    # paper's palette {0.1, 0.2, 0.3} and are NOT shown to the estimator.
    matrix, true_error_rates = simulate_binary_responses(
        n_workers=7, n_tasks=200, rng=rng, density=0.8
    )
    print(f"data: {matrix.n_workers} workers, {matrix.n_tasks} tasks, "
          f"density {matrix.density:.2f} (non-regular)\n")

    # Confidence intervals at the 90% level, using only worker agreements.
    estimates = evaluate_workers(matrix, confidence=0.9)

    header = f"{'worker':>6} {'tasks':>6} {'interval':>22} {'point':>7} {'truth':>7} {'covers?':>8}"
    print(header)
    print("-" * len(header))
    for worker in sorted(estimates):
        estimate = estimates[worker]
        interval = estimate.interval
        truth = true_error_rates[worker]
        covered = "yes" if interval.contains(truth) else "NO"
        print(
            f"{worker:>6} {estimate.n_tasks:>6} "
            f"[{interval.lower:.3f}, {interval.upper:.3f}]".rjust(29)
            + f" {interval.mean:>7.3f} {truth:>7.3f} {covered:>8}"
        )

    sizes = [estimates[w].interval.size for w in estimates]
    print(f"\nmean interval size at c=0.9: {np.mean(sizes):.3f}")
    print("(the paper's contribution is making these intervals as tight as "
          "possible while keeping the stated coverage)")


if __name__ == "__main__":
    main()
