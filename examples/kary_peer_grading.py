"""k-ary example: auditing peer graders in a MOOC.

Peer grading is the paper's flagship k-ary scenario (Section IV-C): students
grade each other's assignments on a 0-5 scale, graders are biased (usually
lenient), and the course staff wants to know each grader's full response
behaviour — not just "how often are they right" but "when the true grade is
a, how likely are they to report b" — with confidence intervals, so that
harsh or lenient graders can be calibrated or removed.

This example loads the MOOC stand-in dataset (grades reduced to 3 levels as
in the paper), picks a triple of graders with many assignments in common, and
prints each grader's estimated confusion matrix with 80% confidence intervals
next to the empirical matrix computed from the staff (gold) grades.

Run with:  python examples/kary_peer_grading.py
"""

from __future__ import annotations

import numpy as np

from repro import evaluate_kary_workers
from repro.data import load_dataset

GRADE_NAMES = ("fail", "pass", "good")
CONFIDENCE = 0.8


def pick_overlapping_triple(matrix, min_common: int = 30) -> tuple[int, int, int]:
    """First triple of graders (by id) sharing at least ``min_common`` tasks."""
    workers_by_activity = sorted(
        range(matrix.n_workers), key=lambda w: -matrix.n_tasks_of(w)
    )
    top = workers_by_activity[:12]
    for i in range(len(top)):
        for j in range(i + 1, len(top)):
            for k in range(j + 1, len(top)):
                triple = (top[i], top[j], top[k])
                if matrix.n_common_tasks(*triple) >= min_common:
                    return triple
    raise RuntimeError("no sufficiently overlapping triple of graders found")


def main() -> None:
    matrix = load_dataset("mooc")
    print(
        f"MOOC peer grading stand-in: {matrix.n_workers} graders, "
        f"{matrix.n_tasks} assignments, {matrix.arity} grade levels\n"
    )
    triple = pick_overlapping_triple(matrix)
    common = matrix.n_common_tasks(*triple)
    print(f"auditing graders {triple} ({common} assignments graded by all three)\n")

    estimates = evaluate_kary_workers(matrix, confidence=CONFIDENCE, workers=triple)

    for grader, estimate in estimates.items():
        print(f"grader {grader}:")
        empirical = matrix.empirical_confusion_matrix(grader)
        for true_label in range(matrix.arity):
            cells = []
            for response in range(matrix.arity):
                interval = estimate.interval(true_label, response)
                cells.append(
                    f"{GRADE_NAMES[response]}: {interval.mean:.2f} "
                    f"[{interval.lower:.2f},{interval.upper:.2f}]"
                )
            gold_row = ", ".join(
                f"{empirical[true_label, response]:.2f}" for response in range(matrix.arity)
            )
            print(
                f"  true={GRADE_NAMES[true_label]:<5} -> "
                + " | ".join(cells)
                + f"   (empirical vs staff grades: {gold_row})"
            )
        accuracy = 1.0 - estimate.mean_error_rate()
        print(f"  implied overall accuracy: {accuracy:.2f}\n")

    print(
        "Reading the output: each row is the grader's behaviour when the true "
        "grade is 'fail'/'pass'/'good'; a lenient grader shows probability "
        "mass to the right of the diagonal.  The intervals say how sure we "
        "can be of that bias without any staff grades."
    )


if __name__ == "__main__":
    main()
