"""Compare the paper's estimator against baselines on every dataset stand-in.

For each binary dataset (IC, RTE, TEM) this example reports, per method:

* how close the point estimates are to the gold-derived error rates (RMSE),
* interval coverage and width where the method produces intervals.

Methods compared:

* the paper's m-worker delta-method intervals (with and without spammer
  filtering),
* Dawid-Skene EM (point estimates only — the classical related work),
* majority-vote disagreement (the crudest proxy),
* gold-standard Wilson intervals (the upper bound that needs gold answers).

Run with:  python examples/dataset_benchmarks.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import dawid_skene, gold_standard_intervals, majority_disagreement_rates
from repro.core.estimator import WorkerEvaluator
from repro.data import load_dataset
from repro.exceptions import InsufficientDataError
from repro.types import EstimateStatus

CONFIDENCE = 0.8
MIN_GOLD_TASKS = 5
DATASETS = ("ic", "rte", "tem")


def gold_truth(matrix) -> dict[int, float]:
    """Gold-derived error rate per worker with enough gold-labelled answers."""
    truth: dict[int, float] = {}
    for worker in range(matrix.n_workers):
        answered_gold = sum(
            1 for task in matrix.worker_responses(worker)
            if matrix.gold_label(task) is not None
        )
        if answered_gold < MIN_GOLD_TASKS:
            continue
        try:
            truth[worker] = matrix.empirical_error_rate(worker)
        except InsufficientDataError:
            continue
    return truth


def rmse(estimates: dict[int, float], truth: dict[int, float]) -> float:
    common = sorted(set(estimates) & set(truth))
    if not common:
        return float("nan")
    return float(np.sqrt(np.mean([(estimates[w] - truth[w]) ** 2 for w in common])))


def report_intervals(name: str, intervals, truth: dict[int, float]) -> None:
    judged = [
        (w, est) for w, est in intervals.items()
        if w in truth and est.status is not EstimateStatus.DEGENERATE
    ]
    if not judged:
        print(f"  {name:<34} no usable intervals")
        return
    coverage = np.mean([est.interval.contains(truth[w]) for w, est in judged])
    size = np.mean([est.interval.size for _, est in judged])
    points = {w: est.interval.mean for w, est in judged}
    print(
        f"  {name:<34} coverage={coverage:.2f}  mean size={size:.3f}  "
        f"RMSE={rmse(points, truth):.3f}  ({len(judged)} workers)"
    )


def main() -> None:
    for dataset_name in DATASETS:
        matrix = load_dataset(dataset_name)
        truth = gold_truth(matrix)
        print(
            f"\n=== {dataset_name.upper()}: {matrix.n_workers} workers, "
            f"{matrix.n_tasks} tasks, density {matrix.density:.2f} "
            f"({len(truth)} workers with >= {MIN_GOLD_TASKS} gold answers) ==="
        )

        paper = WorkerEvaluator(confidence=CONFIDENCE).evaluate_binary(matrix)
        report_intervals("paper (delta-method intervals)", paper, truth)

        filtered = WorkerEvaluator(
            confidence=CONFIDENCE, remove_spammers=True
        ).evaluate_binary(matrix)
        report_intervals("paper + spammer filter", filtered, truth)

        gold = gold_standard_intervals(matrix, confidence=CONFIDENCE)
        report_intervals("gold-standard Wilson (needs gold!)", gold, truth)

        ds_result = dawid_skene(matrix)
        ds_points = {
            worker: ds_result.worker_error_rate(worker)
            for worker in range(matrix.n_workers)
        }
        print(
            f"  {'Dawid-Skene EM (points only)':<34} coverage=n/a   "
            f"mean size=n/a    RMSE={rmse(ds_points, truth):.3f}"
        )

        majority = {
            worker: rate
            for worker, rate in majority_disagreement_rates(matrix).items()
            if rate is not None
        }
        print(
            f"  {'majority disagreement (points)':<34} coverage=n/a   "
            f"mean size=n/a    RMSE={rmse(majority, truth):.3f}"
        )

    print(
        "\nTakeaway: the paper's intervals achieve coverage close to the nominal "
        "level without any gold labels; EM and majority proxies give point "
        "estimates of similar quality but no guarantee, and the gold-standard "
        "intervals (which require the answers the paper does without) are the "
        "tightness ceiling."
    )


if __name__ == "__main__":
    main()
