"""Streaming example: monitoring worker quality as responses arrive.

Crowdsourcing platforms do not deliver results in one batch — responses
trickle in as workers pick up tasks.  The paper's conclusion notes its
methods "can be easily modified to be incremental"; this example uses
:class:`repro.core.IncrementalEvaluator` to maintain live confidence
intervals for every worker while a simulated stream of responses arrives,
and flags workers the moment the evidence is strong enough to act on
(interval entirely above / below a quality threshold).

Run with:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.core import IncrementalEvaluator
from repro.simulation import BinaryWorkerPopulation
from repro.types import EstimateStatus
from repro.workforce import Decision, IntervalFiringPolicy

THRESHOLD = 0.25
CONFIDENCE = 0.9
N_WORKERS = 6
N_TASKS = 400
BATCH_SIZE = 150
SEED = 11


def main() -> None:
    rng = np.random.default_rng(SEED)
    # Ground truth: one clearly bad worker (index 5), the rest good-to-decent.
    true_error_rates = np.array([0.08, 0.12, 0.15, 0.2, 0.22, 0.42])
    population = BinaryWorkerPopulation(error_rates=true_error_rates)
    matrix = population.generate(N_TASKS, rng, densities=0.7)
    stream = list(matrix.iter_responses())
    rng.shuffle(stream)

    evaluator = IncrementalEvaluator(
        n_workers=N_WORKERS, n_tasks=N_TASKS, confidence=CONFIDENCE
    )
    policy = IntervalFiringPolicy(max_error_rate=THRESHOLD)
    decided: dict[int, str] = {}

    print(
        f"streaming {len(stream)} responses in batches of {BATCH_SIZE}; "
        f"acting once an interval clears or crosses the {THRESHOLD} threshold\n"
    )
    for start in range(0, len(stream), BATCH_SIZE):
        batch = stream[start:start + BATCH_SIZE]
        evaluator.add_responses(batch)
        estimates = evaluator.estimate_all()
        print(f"after {evaluator.n_responses:4d} responses:")
        for worker in range(N_WORKERS):
            if worker not in estimates:
                continue
            estimate = estimates[worker]
            if estimate.status is EstimateStatus.DEGENERATE:
                continue
            interval = estimate.interval
            verdict = decided.get(worker, "")
            if not verdict:
                decision = policy.decide(estimate)
                if decision is Decision.FIRE:
                    decided[worker] = verdict = "FIRE (confidently above threshold)"
                elif decision is Decision.CLEARED:
                    decided[worker] = verdict = "cleared (confidently good)"
            print(
                f"  worker {worker}: [{interval.lower:.3f}, {interval.upper:.3f}] "
                f"true={true_error_rates[worker]:.2f} {verdict}"
            )
        print()

    undecided = [worker for worker in range(N_WORKERS) if worker not in decided]
    print(f"decisions made: {decided}")
    print(f"still gathering evidence for workers: {undecided}")
    print(
        "\nNote how the clearly-bad worker is flagged only once their interval "
        "lies above the threshold — not on the first unlucky batch — which is "
        "exactly the behaviour the paper argues for."
    )


if __name__ == "__main__":
    main()
